(* Execution tracing: timed intervals per context, exportable in the
   Chrome tracing JSON format (chrome://tracing, Perfetto) so a
   simulation's interleaving can be inspected visually.

   Events live in a growable flat buffer (not a reversed list): recording
   is an array store, iteration is already in recording order, and
   aggregation is a single array pass.  Recording past [limit] does not
   silently stop — drops are counted and surfaced ([dropped]), so a
   truncated trace is always visibly truncated. *)

type kind =
  | Compute
  | Mem_private
  | Mem_shared
  | Mem_mpb
  | Barrier_wait
  | Lock_wait

let n_kinds = 6

let kind_index = function
  | Compute -> 0
  | Mem_private -> 1
  | Mem_shared -> 2
  | Mem_mpb -> 3
  | Barrier_wait -> 4
  | Lock_wait -> 5

let kind_to_string = function
  | Compute -> "compute"
  | Mem_private -> "private-mem"
  | Mem_shared -> "shared-dram"
  | Mem_mpb -> "mpb"
  | Barrier_wait -> "barrier"
  | Lock_wait -> "lock"

type event = {
  ctx : int;
  core : int;
  start_ps : int;
  end_ps : int;
  kind : kind;
}

type t = {
  mutable buf : event array;
  mutable len : int;
  limit : int;
  mutable n_dropped : int;
}

let dummy_event =
  { ctx = 0; core = 0; start_ps = 0; end_ps = 0; kind = Compute }

let create ?(limit = 1_000_000) () =
  { buf = Array.make 1024 dummy_event; len = 0; limit; n_dropped = 0 }

let record t ~ctx ~core ~start_ps ~end_ps kind =
  if end_ps > start_ps then begin
    if t.len >= t.limit then t.n_dropped <- t.n_dropped + 1
    else begin
      let cap = Array.length t.buf in
      if t.len = cap then begin
        let bigger =
          Array.make (min t.limit (max 1024 (2 * cap))) dummy_event
        in
        Array.blit t.buf 0 bigger 0 cap;
        t.buf <- bigger
      end;
      t.buf.(t.len) <- { ctx; core; start_ps; end_ps; kind };
      t.len <- t.len + 1
    end
  end

let events t = Array.to_list (Array.sub t.buf 0 t.len)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let length t = t.len

let dropped t = t.n_dropped

(* Total busy picoseconds per kind, per context: one pass over the
   buffer into a fixed per-kind accumulator. *)
let busy_by_kind t ~ctx =
  let acc = Array.make n_kinds 0 in
  for i = 0 to t.len - 1 do
    let e = t.buf.(i) in
    if e.ctx = ctx then
      let k = kind_index e.kind in
      acc.(k) <- acc.(k) + (e.end_ps - e.start_ps)
  done;
  let kinds =
    [ Compute; Mem_private; Mem_shared; Mem_mpb; Barrier_wait; Lock_wait ]
  in
  List.filter_map
    (fun k ->
      let v = acc.(kind_index k) in
      if v > 0 then Some (k, v) else None)
    kinds

let max_end_ps t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    if t.buf.(i).end_ps > !acc then acc := t.buf.(i).end_ps
  done;
  !acc

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  for i = 0 to t.len - 1 do
    let e = t.buf.(i) in
    if i > 0 then Buffer.add_string buf ",\n";
    Buffer.add_string buf
      (Printf.sprintf
         {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}|}
         (kind_to_string e.kind)
         (float_of_int e.start_ps /. 1e6)
         (float_of_int (e.end_ps - e.start_ps) /. 1e6)
         e.core e.ctx)
  done;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* The same intervals as [Obs.Chrome] events, for merging with other
   tracks (compiler spans, profiler counter timelines) in one file. *)
let to_chrome_events t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    let e = t.buf.(i) in
    acc :=
      Obs.Chrome.Complete
        {
          name = kind_to_string e.kind;
          cat = "sim";
          pid = e.core;
          tid = e.ctx;
          ts_us = float_of_int e.start_ps /. 1e6;
          dur_us = float_of_int (e.end_ps - e.start_ps) /. 1e6;
          args = [];
        }
      :: !acc
  done;
  !acc
