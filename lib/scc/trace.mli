(** Execution tracing: timed intervals per context, exportable as Chrome
    tracing JSON (chrome://tracing, Perfetto).  Events live in a growable
    flat buffer; recording past [limit] counts drops instead of failing
    silently. *)

type kind =
  | Compute
  | Mem_private
  | Mem_shared
  | Mem_mpb
  | Barrier_wait
  | Lock_wait

val n_kinds : int

val kind_index : kind -> int
(** A dense [0 .. n_kinds-1] index (used by the profiler's per-kind
    accumulators). *)

val kind_to_string : kind -> string

type event = {
  ctx : int;
  core : int;
  start_ps : int;
  end_ps : int;
  kind : kind;
}

type t

val create : ?limit:int -> unit -> t
(** Recording stops after [limit] events (default 10^6); further events
    are counted in {!dropped}. *)

val record :
  t -> ctx:int -> core:int -> start_ps:int -> end_ps:int -> kind -> unit
(** Zero-length intervals are dropped (and not counted as drops). *)

val events : t -> event list
(** In recording order. *)

val iter : t -> (event -> unit) -> unit
(** In recording order, without materialising a list. *)

val length : t -> int

val dropped : t -> int
(** Events discarded because the buffer hit [limit]. *)

val busy_by_kind : t -> ctx:int -> (kind * int) list
(** Total busy picoseconds per kind for one context (single buffer pass;
    kinds with no time are omitted). *)

val max_end_ps : t -> int
(** Latest interval end over every recorded event (0 when empty). *)

val to_chrome_json : t -> string

val to_chrome_events : t -> Obs.Chrome.event list
(** The same intervals as [Obs.Chrome] events, for merging with compiler
    spans and profiler counter timelines in one trace file. *)
