open Cfront

(* The query-based compilation session.

   One session owns the parsed program and a registry of fact providers
   (Stage 1-3 analyses, CFGs, lockset dataflow, race reports, the Stage-4
   partition).  Facts are demanded, not pushed: each provider forces its
   dependencies, runs at most once per program generation, and records
   invocation counts and wall-clock time.  Transform passes publish new
   program generations through [set_program], which invalidates the
   cache — the counters stay cumulative, which is what the --timings
   report and the exactly-once tests read. *)

type options = {
  ncores : int;
  capacity : int;
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
  include_possible : bool;
  many_to_one : bool;
  optimize : bool;
  opt_pre : bool;
  opt_mpb_cache : bool;
  sharpen : bool;
}

let default_options =
  {
    ncores = Partition.Memspec.scc.Partition.Memspec.cores;
    capacity = 0;   (* all-off-chip, the Figure 6.1 configuration *)
    strategy = Partition.Partitioner.Size_ascending;
    sound_locals = false;
    include_possible = false;
    many_to_one = false;
    optimize = false;
    opt_pre = false;
    opt_mpb_cache = false;
    sharpen = false;
  }

(* --- instrumentation ------------------------------------------------------- *)

type stat = {
  s_name : string;
  s_kind : [ `Fact | `Pass ];
  s_deps : string list;
  mutable s_invocations : int;
  mutable s_wall_s : float;
}

let kind_to_string = function `Fact -> "fact" | `Pass -> "pass"

(* The compiler's track in a merged Chrome trace.  Simulator tracks use
   the core number as pid and the profiler's metric track uses 9998, so
   a compile-then-simulate run shows as three distinct processes. *)
let compiler_pid = 9999

type timing = {
  t_name : string;
  t_kind : [ `Fact | `Pass ];
  t_invocations : int;
  t_wall_s : float;
  t_deps : string list;
}

(* --- the session ----------------------------------------------------------- *)

(* A memoized slot, stamped with the generation it was computed for. *)
type 'a cell = { mutable slot : (int * 'a) option }

let cell () = { slot = None }

type snapshot = Analysis.Pipeline.snapshot

type t = {
  mutable prog : Ast.program;
  src_file : string option;
  opts : options;
  mutable gen : int;
  stats : (string, stat) Hashtbl.t;
  mutable stat_order : string list;       (* reverse first-invocation order *)
  spans : Obs.Spans.t;   (* one wall-clock span per provider invocation *)
  symtab_c : Ir.Symtab.t cell;
  scope_c : (Analysis.Scope_analysis.t * snapshot) cell;
  threads_c : (Analysis.Thread_analysis.t * snapshot) cell;
  points_to_c : (Analysis.Points_to.t * snapshot) cell;
  access_c : Analysis.Access_count.t cell;
  pipeline_c : Analysis.Pipeline.t cell;
  cfgs_c : (string * Ir.Cfg.t) list cell;
  locksets_c : (string * Analysis.Lockheld.t) list cell;
  races_c : Analysis.Race.t cell;
  race_diags_c : Diag.t list cell;
  partition_c : Partition.Partitioner.result cell;
  absint_c : Absint.Oblig.summary cell;
  bounds_c : Diag.t list cell;
  sharpen_c : string list cell;
  sync_regions_c : Opt.Sync_regions.t cell;
  opt_plan_c : Opt.Opt_plan.t cell;
}

let create ?file ?(options = default_options) program =
  {
    prog = program;
    src_file = file;
    opts = options;
    gen = 0;
    stats = Hashtbl.create 16;
    stat_order = [];
    spans = Obs.Spans.create ~epoch:(Obs.wall_clock_ns ()) Obs.Nanoseconds;
    symtab_c = cell ();
    scope_c = cell ();
    threads_c = cell ();
    points_to_c = cell ();
    access_c = cell ();
    pipeline_c = cell ();
    cfgs_c = cell ();
    locksets_c = cell ();
    races_c = cell ();
    race_diags_c = cell ();
    partition_c = cell ();
    absint_c = cell ();
    bounds_c = cell ();
    sharpen_c = cell ();
    sync_regions_c = cell ();
    opt_plan_c = cell ();
  }

let program t = t.prog
let file t = t.src_file
let options t = t.opts
let generation t = t.gen

let invalidate t =
  t.symtab_c.slot <- None;
  t.scope_c.slot <- None;
  t.threads_c.slot <- None;
  t.points_to_c.slot <- None;
  t.access_c.slot <- None;
  t.pipeline_c.slot <- None;
  t.cfgs_c.slot <- None;
  t.locksets_c.slot <- None;
  t.races_c.slot <- None;
  t.race_diags_c.slot <- None;
  t.partition_c.slot <- None;
  t.absint_c.slot <- None;
  t.bounds_c.slot <- None;
  t.sharpen_c.slot <- None;
  t.sync_regions_c.slot <- None;
  t.opt_plan_c.slot <- None

let set_program t program =
  t.prog <- program;
  t.gen <- t.gen + 1;
  invalidate t

(* --- provider machinery ---------------------------------------------------- *)

let stat_of t name kind deps =
  match Hashtbl.find_opt t.stats name with
  | Some s -> s
  | None ->
      let s =
        { s_name = name; s_kind = kind; s_deps = deps;
          s_invocations = 0; s_wall_s = 0. }
      in
      Hashtbl.replace t.stats name s;
      t.stat_order <- name :: t.stat_order;
      s

let timed t name kind deps compute =
  let s = stat_of t name kind deps in
  let t0 = Obs.wall_clock_ns () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Obs.wall_clock_ns () in
      s.s_wall_s <- s.s_wall_s +. (float_of_int (t1 - t0) /. 1e9);
      Obs.Spans.record t.spans ~name ~cat:(kind_to_string kind)
        ~pid:compiler_pid ~tid:0 ~start:t0 ~dur:(t1 - t0) ())
    (fun () ->
      s.s_invocations <- s.s_invocations + 1;
      compute ())

(* Demand one fact: return the cached value when it is of the current
   generation, otherwise run the provider (dependencies were already
   forced by the accessor, so the timed region is this provider alone). *)
let demand t cl name deps compute =
  match cl.slot with
  | Some (g, v) when g = t.gen -> v
  | Some _ | None ->
      let v = timed t name `Fact deps compute in
      cl.slot <- Some (t.gen, v);
      v

let record_pass t ~name f = timed t name `Pass [] f

(* --- the provider graph ---------------------------------------------------- *)

let symtab t =
  demand t t.symtab_c "symtab" [] (fun () -> Ir.Symtab.build t.prog)

(* Stage 1.  The scope table is refined in place by the Stage 2/3
   providers, so [scope] alone gives the Stage-1 view only until a later
   stage is demanded — exactly the paper's in-order refinement. *)
let scope_snap t =
  let st = symtab t in
  demand t t.scope_c "scope" [ "symtab" ] (fun () ->
      Analysis.Pipeline.stage1 st)

let scope t = fst (scope_snap t)

let threads_snap t =
  let sc = scope t in
  demand t t.threads_c "threads" [ "scope" ] (fun () ->
      Analysis.Pipeline.stage2 sc)

let threads t = fst (threads_snap t)

let points_to_snap t =
  let st = symtab t in
  let sc = scope t in
  (* Stage 3 refines on top of Stage 2's refinement: force the order. *)
  let (_ : Analysis.Thread_analysis.t) = threads t in
  demand t t.points_to_c "points-to" [ "symtab"; "scope"; "threads" ]
    (fun () -> Analysis.Pipeline.stage3
        ~include_possible:t.opts.include_possible st sc)

let points_to t = fst (points_to_snap t)

let access_counts t =
  let sc = scope t in
  let th = threads t in
  (* faithful to the fixed pipeline: estimates are taken post Stage 3 *)
  let (_ : Analysis.Points_to.t) = points_to t in
  demand t t.access_c "access-counts" [ "scope"; "threads"; "points-to" ]
    (fun () -> Analysis.Access_count.run sc th)

let sharing_snapshots t =
  let _, s1 = scope_snap t in
  let _, s2 = threads_snap t in
  let _, s3 = points_to_snap t in
  (s1, s2, s3)

(* Thread-modular abstract interpretation over the current generation.
   Mode (Pthread vs RCCE) is auto-detected from the program shape, so
   the same fact serves the source program and its translation. *)
let absint_summary t =
  demand t t.absint_c "absint" [] (fun () ->
      Absint.analyze ~ncores:t.opts.ncores t.prog)

let bounds_verdict t =
  let s = absint_summary t in
  demand t t.bounds_c "bounds-verdict" [ "absint" ] (fun () ->
      Absint.diags_of s)

(* Feed proven thread-locality back into the sharing lattice (globals
   demoted Shared -> Private); returns the demoted names.  Forced by
   [pipeline] when the session options ask for it, so every downstream
   consumer (races, partition, the translator) sees the sharpened
   table. *)
let sharpened t =
  let scope = scope t in
  let threads = threads t in
  (* sharpen on top of the fully-built Table 4.2 lattice *)
  let (_ : Analysis.Points_to.t) = points_to t in
  let s = absint_summary t in
  demand t t.sharpen_c "sharpen" [ "scope"; "threads"; "points-to"; "absint" ]
    (fun () -> Absint.Sharpen.apply ~scope ~threads s)

let pipeline t =
  let scope, after_stage1 = scope_snap t in
  let threads, after_stage2 = threads_snap t in
  let points_to, after_stage3 = points_to_snap t in
  let access = access_counts t in
  let (_ : string list) = if t.opts.sharpen then sharpened t else [] in
  demand t t.pipeline_c "pipeline"
    [ "scope"; "threads"; "points-to"; "access-counts" ] (fun () ->
      { Analysis.Pipeline.scope; threads; points_to; access;
        after_stage1; after_stage2; after_stage3 })

let cfgs t =
  demand t t.cfgs_c "cfgs" [] (fun () ->
      List.map
        (fun (fn : Ast.func) -> (fn.Ast.f_name, Ir.Cfg.build fn))
        (Ast.functions t.prog))

let locksets t =
  let st = symtab t in
  demand t t.locksets_c "locksets" [ "symtab" ] (fun () ->
      List.map
        (fun (fn : Ast.func) ->
          (fn.Ast.f_name, Analysis.Lockheld.analyze st fn))
        (Ast.functions t.prog))

let races t =
  let p = pipeline t in
  let ls = locksets t in
  demand t t.races_c "races" [ "pipeline"; "locksets" ] (fun () ->
      Analysis.Race.run ~locksets:ls p)

let race_diags t =
  let r = races t in
  demand t t.race_diags_c "race-diags" [ "races" ] (fun () ->
      Analysis.Race.to_diags r)

let partition t =
  let p = pipeline t in
  demand t t.partition_c "partition" [ "pipeline" ] (fun () ->
      let items = Partition.Partitioner.items_of_analysis p in
      Partition.Partitioner.partition ~strategy:t.opts.strategy
        Partition.Memspec.scc ~capacity:t.opts.capacity items)

(* Locality facts for the optimizer stage.  Both are per-generation like
   every other fact: the optimizer passes demand them against the
   translated generation they are about to rewrite, and --timings lists
   them as their own provider rows. *)
let sync_regions t =
  let cfgs = cfgs t in
  demand t t.sync_regions_c "sync-regions" [ "cfgs" ] (fun () ->
      Opt.Sync_regions.analyze ~cfgs t.prog)

let opt_plan t =
  let access = access_counts t in
  demand t t.opt_plan_c "opt-plan" [ "access-counts" ] (fun () ->
      Opt.Opt_plan.build ~ncores:t.opts.ncores ~access t.prog)

(* --- timings report -------------------------------------------------------- *)

let timings t =
  List.rev_map
    (fun name ->
      let s = Hashtbl.find t.stats name in
      { t_name = s.s_name; t_kind = s.s_kind;
        t_invocations = s.s_invocations; t_wall_s = s.s_wall_s;
        t_deps = s.s_deps })
    t.stat_order

let invocations t name =
  match Hashtbl.find_opt t.stats name with
  | Some s -> s.s_invocations
  | None -> 0

let facts_computed t =
  Hashtbl.fold
    (fun _ s acc ->
      if s.s_kind = `Fact then acc + s.s_invocations else acc)
    t.stats 0

let spans t = t.spans

let chrome_events t =
  Obs.Chrome.Process_name { pid = compiler_pid; name = "hsmcc compiler" }
  :: Obs.Chrome.Thread_name
       { pid = compiler_pid; tid = 0; name = "providers" }
  :: Obs.Spans.to_chrome t.spans

(* Human table, in the spirit of lib/diag's gcc renderer: fixed columns,
   one line per provider, machine-stable names. *)
let render_timings t =
  let rows = timings t in
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-16s %-5s %6d %10.3f  %s" r.t_name
          (kind_to_string r.t_kind) r.t_invocations (r.t_wall_s *. 1000.)
          (match r.t_deps with [] -> "-" | d -> String.concat ", " d))
      rows
  in
  String.concat "\n"
    (Printf.sprintf "%-16s %-5s %6s %10s  %s" "provider" "kind" "calls"
       "wall-ms" "depends-on"
    :: lines)
  ^ "\n"

(* JSON renderer following lib/diag's conventions: one array of flat
   objects, no trailing newline inside the array. *)
let json_escape = Obs.json_escape

let render_timings_json t =
  let obj r =
    Printf.sprintf
      "  {\"name\": \"%s\", \"kind\": \"%s\", \"invocations\": %d, \
       \"wall_ms\": %.3f, \"deps\": [%s]}"
      (json_escape r.t_name)
      (kind_to_string r.t_kind)
      r.t_invocations (r.t_wall_s *. 1000.)
      (String.concat ", "
         (List.map (fun d -> Printf.sprintf "\"%s\"" (json_escape d)) r.t_deps))
  in
  "[\n" ^ String.concat ",\n" (List.map obj (timings t)) ^ "\n]\n"

let timings_format_of_string = function
  | "table" | "text" -> Some `Table
  | "json" -> Some `Json
  | _ -> None
