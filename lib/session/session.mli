open Cfront

(** A compilation session: one parsed program plus a registry of typed,
    lazily-computed, memoized analysis {e facts}.

    Every consumer of the Stage 1–4 analyses — [hsmcc check],
    [hsmcc translate], the experiments harness, the tests — works
    against one session, so each fact is computed {b at most once} per
    program generation no matter how many commands ride on it.  A
    transform pass publishing a rewritten program ({!set_program}) bumps
    the generation and invalidates every cached fact; the next demand
    recomputes against the new program.

    Each provider records how often it ran and how much wall-clock it
    spent; {!timings} / {!render_timings} surface that as the
    [hsmcc translate --timings] report. *)

(** {1 Options} *)

type options = {
  ncores : int;            (** cores of the target chip *)
  capacity : int;          (** on-chip bytes available for shared data *)
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
      (** hoist shared locals into shared memory (the thesis's example
          output leaves them on the process stack) *)
  include_possible : bool; (** propagate sharing via Possible relations *)
  many_to_one : bool;
      (** map several threads onto one core with a task loop instead of
          rejecting programs with more threads than cores *)
  optimize : bool;
      (** the full optimizer bundle: MPB software caching, PRE of shared
          loads, constant folding + dead-branch elimination *)
  opt_pre : bool;
      (** just the PRE/load-hoisting pass (also implied by [optimize]) *)
  opt_mpb_cache : bool;
      (** just the MPB software-cache pass (also implied by [optimize]) *)
  sharpen : bool;
      (** feed proven thread-locality facts from the abstract
          interpretation back into the sharing lattice before
          partitioning *)
}

val default_options : options
(** 48 cores, all-off-chip placement, paper-faithful behaviour. *)

(** {1 Sessions} *)

type t

val create : ?file:string -> ?options:options -> Ast.program -> t

val program : t -> Ast.program
(** The current program (the latest generation). *)

val file : t -> string option
val options : t -> options

val generation : t -> int
(** Starts at 0; incremented by every {!set_program}. *)

val set_program : t -> Ast.program -> unit
(** Publish a transformed program: bumps the generation and invalidates
    every cached fact.  Instrumentation counters are cumulative across
    generations. *)

(** {1 Facts}

    Each accessor demands one provider; dependencies are forced first,
    so a single call computes exactly the transitive closure it needs.
    All raise [Srcloc.Error] on semantic errors in the program (e.g.
    duplicate declarations), like the underlying analyses. *)

val symtab : t -> Ir.Symtab.t

val scope : t -> Analysis.Scope_analysis.t
(** Stage 1.  Note the record is refined in place by the Stage 2/3
    providers; demand {!pipeline} for the all-stages-applied view. *)

val threads : t -> Analysis.Thread_analysis.t
(** Stage 2. *)

val points_to : t -> Analysis.Points_to.t
(** Stage 3. *)

val access_counts : t -> Analysis.Access_count.t

val sharing_snapshots :
  t ->
  Analysis.Pipeline.snapshot
  * Analysis.Pipeline.snapshot
  * Analysis.Pipeline.snapshot
(** Sharing status after Stages 1/2/3 — the Table 4.2 columns. *)

val pipeline : t -> Analysis.Pipeline.t
(** The assembled Stage 1–3 record every downstream consumer takes. *)

val cfgs : t -> (string * Ir.Cfg.t) list
(** One control-flow graph per function, in program order. *)

val locksets : t -> (string * Analysis.Lockheld.t) list
(** Must-hold lockset dataflow solution per function. *)

val races : t -> Analysis.Race.t
val race_diags : t -> Diag.t list
val partition : t -> Partition.Partitioner.result
(** Stage 4, using the session options' strategy and capacity. *)

val absint_summary : t -> Absint.Oblig.summary
(** Thread-modular abstract interpretation of the current generation:
    one proof obligation per indexed or dereferenced access, spawn-site
    thread-id intervals, and per-global thread-extent facts.  The mode
    (Pthread vs RCCE) is detected from the program shape. *)

val bounds_verdict : t -> Diag.t list
(** One diagnostic per undischarged obligation of {!absint_summary}
    (warning when unproved, error when definitely out of bounds). *)

val sync_regions : t -> Opt.Sync_regions.t
(** Sync-free regions of the current generation: per-function CFG region
    ids plus transitive does-this-call-synchronize summaries. *)

val opt_plan : t -> Opt.Opt_plan.t
(** The locality plan of the current generation: shared allocations,
    escape/read-only classification, and capacity-checked MPB software-
    cache candidates.  Meaningful on the translated (RCCE) generation. *)

val sharpened : t -> string list
(** Demote globals the abstract interpretation proved thread-local from
    [Shared] to [Private]; returns the demoted names.  Forced by
    {!pipeline} when the session options set [sharpen]. *)

(** {1 Instrumentation} *)

type timing = {
  t_name : string;
  t_kind : [ `Fact | `Pass ];
  t_invocations : int;
  t_wall_s : float;         (** cumulative across generations *)
  t_deps : string list;     (** provider names this one demands *)
}

val timings : t -> timing list
(** Every provider or pass that ran, in first-invocation order. *)

val invocations : t -> string -> int
(** Cumulative invocation count of a provider (0 if it never ran). *)

val facts_computed : t -> int
(** Total fact-provider invocations (passes excluded). *)

val record_pass : t -> name:string -> (unit -> 'a) -> 'a
(** Time an arbitrary unit of work (a Stage-5 transform pass, the
    structural validator) into the same table as the fact providers. *)

val spans : t -> Obs.Spans.t
(** One wall-clock span per provider/pass invocation, epoch-rebased to
    the session's creation time. *)

val chrome_events : t -> Obs.Chrome.event list
(** The spans as Chrome trace events under a dedicated compiler process
    (pid 9999), mergeable with simulator traces via
    [Obs.Chrome.write_merge] for one Perfetto view of a
    compile-then-simulate run. *)

val render_timings : t -> string
(** Human-readable table, one row per provider/pass. *)

val render_timings_json : t -> string
(** One JSON array of objects with keys [name], [kind], [invocations],
    [wall_ms], [deps] — same conventions as [Diag]'s JSON renderer. *)

val timings_format_of_string : string -> [ `Table | `Json ] option
(** Recognizes ["table"] (alias ["text"]) and ["json"]. *)
