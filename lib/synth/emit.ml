(* The C route of the synthetic workload engine: a spec emits a
   well-typed Pthread program inside the translatable subset, so every
   sweep point can also run through [Cexec.Interp.run_pthread], the [-O]
   translator and the conformance oracle.

   The kernel mirrors the direct route's shape — an in-C LCG drives the
   private/shared mix, the read fraction, and hot-group indexing — but
   is data-race-free by construction with exactly one defined outcome:

   - the hot and cold tables are read-only, initialized idempotently in
     [main] (every core of the translated program re-runs the writes
     with identical values);
   - shared writes land in [wr0], each thread owning the disjoint slot
     range [tid*WL .. tid*WL+WL);
   - the [g0] accumulator is additive under its mutex and each thread's
     contribution is a pure function of [tid], so the sum commutes;
   - per-thread results go to [out0[tid]] and are printed as tagged
     [OBS] observations by [main] after the joins. *)

open Cfront
open Conform.Gen.Build

let lcg_mod = 65537

(* Every spec parameter is baked in as a literal, like the paper's
   benchmarks were "built for 32 threads". *)
let worker_body (sp : Spec.t) =
  let wl = max 1 sp.Spec.n_private in
  let x0 = (sp.Spec.seed mod 9973) + 1 in
  let read_e =
    (* one shared read, dispatched hot/cold on the LCG state *)
    let hot_read =
      let d = sp.Spec.sharing in
      let gl = Spec.group_len sp in
      (* sh0[((tid / d) * gl + x % gl) % ns] *)
      Ast.Assign
        ( Some Ast.Add,
          v "sum",
          idx (v "sh0")
            (bin Ast.Mod
               (bin Ast.Add
                  (bin Ast.Mul (bin Ast.Div (v "tid") (il d)) (il gl))
                  (bin Ast.Mod (v "x") (il gl)))
               (il sp.Spec.n_shared)) )
    in
    let cold_read =
      Ast.Assign
        ( Some Ast.Add,
          v "sum",
          idx (v "cd0") (bin Ast.Mod (v "x") (il sp.Spec.n_cold)) )
    in
    match (sp.Spec.n_shared > 0, sp.Spec.n_cold > 0) with
    | true, true ->
        s
          (Ast.Sif
             ( bin Ast.Eq (bin Ast.Mod (v "x") (il 16)) (il 0),
               ex cold_read,
               Some (ex hot_read) ))
    | true, false -> ex hot_read
    | false, true -> ex cold_read
    | false, false ->
        ex (Ast.Assign (Some Ast.Add, v "sum", bin Ast.Mod (v "x") (il 5)))
  in
  let write_s =
    (* wr0[tid * wl + x % wl] = (sum + i) % 9973 *)
    ex
      (Ast.assign
         (idx (v "wr0")
            (bin Ast.Add
               (bin Ast.Mul (v "tid") (il wl))
               (bin Ast.Mod (v "x") (il wl))))
         (bin Ast.Mod (bin Ast.Add (v "sum") (v "i")) (il 9973)))
  in
  let iteration =
    [ ex
        (Ast.assign (v "x")
           (bin Ast.Mod
              (bin Ast.Add (bin Ast.Mul (v "x") (il 75)) (il 74))
              (il lcg_mod)));
      s
        (Ast.Sif
           ( bin Ast.Lt (bin Ast.Mod (v "x") (il 100)) (il sp.Spec.shared_pct),
             s
               (Ast.Sblock
                  [ s
                      (Ast.Sif
                         ( bin Ast.Lt
                             (bin Ast.Mod (bin Ast.Div (v "x") (il 100))
                                (il 100))
                             (il sp.Spec.read_pct),
                           read_e,
                           Some write_s )) ]),
             Some
               (ex
                  (Ast.assign (v "sum")
                     (bin Ast.Add (v "sum") (bin Ast.Mod (v "x") (il 9))))) ))
    ]
  in
  let phase_loop = for_to "i" (il sp.Spec.insns) iteration in
  let phase_blocks =
    List.concat
      (List.init sp.Spec.phases (fun p ->
           (if p > 0 then
              [ ex (Ast.call "pthread_barrier_wait" [ addr (v "bar") ]) ]
            else [])
           @ [ phase_loop ]))
  in
  [ decl_stmt ~init:(Ast.Init_expr (Ast.Cast (Ctype.Int, v "arg"))) "tid"
      Ctype.Int;
    decl_stmt
      ~init:
        (Ast.Init_expr (bin Ast.Add (il x0) (bin Ast.Mul (v "tid") (il 131))))
      "x" Ctype.Int;
    decl_stmt ~init:(Ast.Init_expr (il 0)) "sum" Ctype.Int;
    decl_stmt "i" Ctype.Int ]
  @ phase_blocks
  @ [ ex (Ast.assign (idx (v "out0") (v "tid")) (v "sum"));
      ex (Ast.call "pthread_mutex_lock" [ addr (v "m0") ]);
      ex
        (Ast.Assign
           (Some Ast.Add, v "g0", bin Ast.Mod (v "sum") (il 1000)));
      ex (Ast.call "pthread_mutex_unlock" [ addr (v "m0") ]);
      ex (Ast.call "pthread_exit" [ null ]) ]

let program_of_spec (sp : Spec.t) =
  (match Spec.validate sp with
  | Ok () -> ()
  | Error m -> invalid_arg ("Synth.Emit.program_of_spec: " ^ m));
  let nt = sp.Spec.threads in
  let wl = max 1 sp.Spec.n_private in
  let void_ptr = Ctype.Ptr Ctype.Void in
  let globals =
    (if sp.Spec.n_shared > 0 then
       [ Ast.Gvar (Ast.decl "sh0" (Ctype.Array (Ctype.Int, Some sp.Spec.n_shared))) ]
     else [])
    @ (if sp.Spec.n_cold > 0 then
         [ Ast.Gvar (Ast.decl "cd0" (Ctype.Array (Ctype.Int, Some sp.Spec.n_cold))) ]
       else [])
    @ [ Ast.Gvar (Ast.decl "wr0" (Ctype.Array (Ctype.Int, Some (nt * wl))));
        Ast.Gvar (Ast.decl "out0" (Ctype.Array (Ctype.Int, Some nt)));
        Ast.Gvar (Ast.decl "g0" Ctype.Int);
        Ast.Gvar (Ast.decl "m0" (Ctype.Named "pthread_mutex_t")) ]
    @
    if sp.Spec.phases > 1 then
      [ Ast.Gvar (Ast.decl "bar" (Ctype.Named "pthread_barrier_t")) ]
    else []
  in
  let ro_init name n f =
    (* for (t..n) name[t] = f-formula(t); idempotent across cores *)
    for_to "t" (il n) [ ex (Ast.assign (idx (v name) (v "t")) (f (v "t"))) ]
  in
  let main_body =
    [ decl_stmt "t" Ctype.Int;
      decl_stmt "threads" (Ctype.Array (Ctype.Named "pthread_t", Some nt));
      ex (Ast.call "pthread_mutex_init" [ addr (v "m0"); null ]) ]
    @ (if sp.Spec.phases > 1 then
         [ ex (Ast.call "pthread_barrier_init" [ addr (v "bar"); null; il nt ]) ]
       else [])
    @ (if sp.Spec.n_shared > 0 then
         [ ro_init "sh0" sp.Spec.n_shared (fun t ->
               bin Ast.Mod
                 (bin Ast.Add (bin Ast.Mul t (il 7)) (il 3))
                 (il 101)) ]
       else [])
    @ (if sp.Spec.n_cold > 0 then
         [ ro_init "cd0" sp.Spec.n_cold (fun t ->
               bin Ast.Mod
                 (bin Ast.Add (bin Ast.Mul t (il 5)) (il 1))
                 (il 89)) ]
       else [])
    @ [ for_to "t" (il nt)
          [ ex
              (Ast.call "pthread_create"
                 [ addr (idx (v "threads") (v "t")); null; v "work";
                   Ast.Cast (void_ptr, v "t") ]) ];
        for_to "t" (il nt)
          [ ex (Ast.call "pthread_join" [ idx (v "threads") (v "t"); null ]) ];
        ex (printf_ "OBS g0 0 %d\n" [ v "g0" ]);
        for_to "t" (il nt)
          [ ex (printf_ "OBS out %d %d\n" [ v "t"; idx (v "out0") (v "t") ]) ];
        for_to "t" (il nt)
          [ ex
              (printf_ "OBS wr %d %d\n"
                 [ v "t"; idx (v "wr0") (bin Ast.Mul (v "t") (il wl)) ]) ];
        s (Ast.Sreturn (Some (il 0))) ]
  in
  { Ast.p_includes = [ "#include <stdio.h>"; "#include <pthread.h>" ];
    p_globals =
      globals
      @ [ Ast.Gfunc
            (Ast.func "work" ~ret:void_ptr
               ~params:[ ("arg", void_ptr) ]
               (worker_body sp));
          Ast.Gfunc (Ast.func "main" ~ret:Ctype.Int ~params:[] main_body) ] }

let source_of_spec sp = Conform.Gen.source_of_program (program_of_spec sp)

(* The oracle configuration for a spec's C program: the translated RCCE
   execution runs on [threads] cores through the [-O] pipeline (the
   sweep's differential stressor forces the optimizer on every point). *)
let oracle_config ?(optimize = true) (sp : Spec.t) =
  let c = Conform.Oracle.default_config ~ncores:sp.Spec.threads in
  { c with
    Conform.Oracle.options =
      { c.Conform.Oracle.options with Translate.Pass.optimize } }
