(** The C route: a spec emits a well-typed, data-race-free Pthread
    program inside the translatable subset, so every sweep point can
    also run through {!Cexec.Interp.run_pthread}, the [-O] translator,
    and the conformance oracle. *)

open Cfront

val program_of_spec : Spec.t -> Ast.program
(** Pure function of the spec: the same spec yields a byte-identical
    program on every run and machine.  Raises [Invalid_argument] on a
    spec that fails {!Spec.validate}. *)

val source_of_spec : Spec.t -> string
(** {!program_of_spec} pretty-printed as C source. *)

val oracle_config : ?optimize:bool -> Spec.t -> Conform.Oracle.config
(** Oracle configuration for the spec's program: RCCE leg on
    [sp.threads] cores, optimizer on by default. *)
