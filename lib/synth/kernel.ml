(* The direct execution route of the synthetic workload engine.

   A spec expands to per-thread access traces (a pure function of the
   spec, drawn from the conformance harness's splitmix64 stream), and a
   trace replays on the simulated SCC as a {!Workloads.Workload.t}: every
   access is timed through the memory hierarchy, writes are commutative
   native adds so the final array sums are interleaving-independent and
   verifiable, and a placement policy decides — per shared array — MPB
   SRAM versus off-chip DRAM.  [Greedy] is the paper's Algorithm 3
   (size-ascending fill); the other policies are the forced alternatives
   the sweep's loss hunter compares it against. *)

open Workloads

type policy = Greedy | All_dram | All_mpb | Density

let policies = [ Greedy; All_dram; All_mpb; Density ]

let policy_to_string = function
  | Greedy -> "greedy"
  | All_dram -> "all-dram"
  | All_mpb -> "all-mpb"
  | Density -> "density"

type array_place = Mpb | Dram

let place_to_string = function Mpb -> "mpb" | Dram -> "dram"

(* ------------------------------------------------------------------ *)
(* Access traces                                                      *)

type target = Hot | Cold | Priv

type op = Read | Write

type access = {
  a_phase : int;
  a_target : target;
  a_op : op;
  a_idx : int;
  a_val : int;  (* amount added by a shared write *)
}

let trace_of_thread (sp : Spec.t) tid =
  let rng = Conform.Rng.create ((sp.Spec.seed lsl 8) + tid) in
  let total = sp.phases * sp.insns in
  let dummy = { a_phase = 0; a_target = Priv; a_op = Read; a_idx = 0; a_val = 0 } in
  let tr = Array.make total dummy in
  let k = ref 0 in
  for phase = 0 to sp.phases - 1 do
    for _ = 1 to sp.insns do
      let shared =
        sp.shared_pct > 0
        && Conform.Rng.int rng 100 < sp.shared_pct
        && (sp.n_shared > 0 || sp.n_cold > 0)
      in
      let target =
        if not shared then Priv
        else if sp.n_shared = 0 then Cold
        else if sp.n_cold > 0 && Conform.Rng.int rng 16 = 0 then Cold
        else Hot
      in
      let op =
        match target with
        | Hot | Cold ->
            if Conform.Rng.int rng 100 < sp.read_pct then Read else Write
        | Priv -> if Conform.Rng.int rng 2 = 0 then Read else Write
      in
      let idx =
        match target with
        | Hot ->
            let gl = Spec.group_len sp in
            ((Spec.group_of_thread sp tid * gl) + Conform.Rng.int rng gl)
            mod sp.n_shared
        | Cold -> Conform.Rng.int rng sp.n_cold
        | Priv -> if sp.n_private > 0 then Conform.Rng.int rng sp.n_private else 0
      in
      let v = Conform.Rng.int rng 1000 in
      tr.(!k) <- { a_phase = phase; a_target = target; a_op = op;
                   a_idx = idx; a_val = v };
      incr k
    done
  done;
  tr

let traces_of_spec sp =
  Array.init sp.Spec.threads (fun tid -> trace_of_thread sp tid)

let count_accesses traces target =
  Array.fold_left
    (fun acc tr ->
      Array.fold_left
        (fun acc e -> if e.a_target = target then acc + 1 else acc)
        acc tr)
    0 traces

let write_sum traces target =
  Array.fold_left
    (fun acc tr ->
      Array.fold_left
        (fun acc e ->
          if e.a_target = target && e.a_op = Write then acc + e.a_val
          else acc)
        acc tr)
    0 traces

(* Idempotent initial contents — the C route re-runs the same formulas
   in every core's [main]. *)
let hot_init i = (i * 7 + 3) mod 101
let cold_init i = (i * 5 + 1) mod 89

(* ------------------------------------------------------------------ *)
(* Placement plans                                                    *)

type plan = { hot_place : array_place option; cold_place : array_place option }

let plan_of_policy (sp : Spec.t) traces policy =
  let hot = sp.Spec.n_shared > 0 and cold = sp.Spec.n_cold > 0 in
  let opt b p = if b then Some p else None in
  match policy with
  | All_dram -> { hot_place = opt hot Dram; cold_place = opt cold Dram }
  | All_mpb -> { hot_place = opt hot Mpb; cold_place = opt cold Mpb }
  | Greedy | Density ->
      let strategy =
        match policy with
        | Greedy -> Partition.Partitioner.Size_ascending
        | _ -> Partition.Partitioner.Access_density
      in
      let items =
        (if hot then
           [ { Partition.Partitioner.var = Ir.Var_id.global "hot";
               bytes = sp.Spec.n_shared * Spec.elt_bytes;
               accesses = count_accesses traces Hot } ]
         else [])
        @
        if cold then
          [ { Partition.Partitioner.var = Ir.Var_id.global "cold";
              bytes = sp.Spec.n_cold * Spec.elt_bytes;
              accesses = count_accesses traces Cold } ]
        else []
      in
      if items = [] then { hot_place = None; cold_place = None }
      else begin
        let capacity =
          Partition.Memspec.on_chip_capacity Partition.Memspec.scc
            ~ncores:sp.Spec.threads
        in
        let r =
          Partition.Partitioner.partition ~strategy Partition.Memspec.scc
            ~capacity items
        in
        (* assignments come back in input order: hot first when present *)
        let place_of (a : Partition.Partitioner.assignment) =
          match a.Partition.Partitioner.placement with
          | Partition.Partitioner.On_chip -> Mpb
          | Partition.Partitioner.Off_chip | Partition.Partitioner.Split _ ->
              Dram
        in
        match (r.Partition.Partitioner.assignments, hot, cold) with
        | [ h; c ], true, true ->
            { hot_place = Some (place_of h); cold_place = Some (place_of c) }
        | [ h ], true, false -> { hot_place = Some (place_of h); cold_place = None }
        | [ c ], false, true -> { hot_place = None; cold_place = Some (place_of c) }
        | _ -> { hot_place = None; cold_place = None }
      end

(* ------------------------------------------------------------------ *)
(* The workload                                                       *)

let make_workload (sp : Spec.t) traces plan =
  let instantiate (ctx : Workload.ctx) =
    let mm = Scc.Engine.memmap ctx.Workload.eng in
    let line = (Scc.Engine.cfg ctx.Workload.eng).Scc.Config.line_bytes in
    let cores = List.init sp.Spec.threads (fun i -> i) in
    let alloc_shared name elts place =
      if elts = 0 then None
      else
        let bytes = elts * Spec.elt_bytes in
        let off_chip () =
          Sharr.create ~name ~elts ~elt_bytes:Spec.elt_bytes
            (Sharr.Contiguous (Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes))
        in
        match place with
        | Dram -> Some (off_chip ())
        | Mpb -> (
            match Scc.Memmap.alloc_mpb_striped mm ~cores ~bytes with
            | chunks ->
                let per = (bytes + sp.Spec.threads - 1) / sp.Spec.threads in
                let chunk_bytes = (per + line - 1) / line * line in
                Some
                  (Sharr.create ~name ~elts ~elt_bytes:Spec.elt_bytes
                     (Sharr.Striped
                        { chunks = Array.of_list chunks; chunk_bytes }))
            | exception Scc.Memmap.Out_of_memory _ ->
                Workload.note ctx
                  "array '%s' (%d bytes) exceeds the on-chip MPB; placed \
                   off-chip"
                  name bytes;
                Some (off_chip ()))
    in
    let hot =
      match plan.hot_place with
      | None -> None
      | Some p -> alloc_shared "hot" sp.Spec.n_shared p
    in
    let cold =
      match plan.cold_place with
      | None -> None
      | Some p -> alloc_shared "cold" sp.Spec.n_cold p
    in
    let priv_base =
      Array.init sp.Spec.threads (fun u ->
          if sp.Spec.n_private = 0 then 0
          else
            Scc.Memmap.alloc mm (Scc.Memmap.Private u)
              ~bytes:(sp.Spec.n_private * Spec.elt_bytes))
    in
    let init arr f =
      match arr with
      | None -> ()
      | Some a ->
          let data = Sharr.data a in
          Array.iteri (fun i _ -> data.(i) <- float_of_int (f i)) data
    in
    init hot hot_init;
    init cold cold_init;
    let sink = ref 0.0 in
    let body (api : Scc.Engine.api) =
      let tid = api.Scc.Engine.self in
      let tr = traces.(tid) in
      let cur_phase = ref 0 in
      Array.iter
        (fun e ->
          if e.a_phase <> !cur_phase then begin
            api.Scc.Engine.barrier ();
            cur_phase := e.a_phase
          end;
          if sp.Spec.compute > 0 then api.Scc.Engine.compute sp.Spec.compute;
          let shared_access arr =
            match arr with
            | None -> ()
            | Some a -> (
                match e.a_op with
                | Read ->
                    Sharr.touch_block api ~write:false a ~off:e.a_idx ~len:1;
                    sink := !sink +. (Sharr.data a).(e.a_idx)
                | Write ->
                    Sharr.touch_block api ~write:true a ~off:e.a_idx ~len:1;
                    let data = Sharr.data a in
                    data.(e.a_idx) <- data.(e.a_idx) +. float_of_int e.a_val)
          in
          match e.a_target with
          | Hot -> shared_access hot
          | Cold -> shared_access cold
          | Priv ->
              if sp.Spec.n_private > 0 then begin
                let addr = priv_base.(tid) + (e.a_idx * Spec.elt_bytes) in
                match e.a_op with
                | Read -> api.Scc.Engine.load addr ~bytes:Spec.elt_bytes
                | Write -> api.Scc.Engine.store addr ~bytes:Spec.elt_bytes
              end)
        tr
    in
    let check arr target init_f elts =
      match arr with
      | None -> true
      | Some a ->
          let actual = Array.fold_left ( +. ) 0.0 (Sharr.data a) in
          let init_sum = ref 0 in
          for i = 0 to elts - 1 do
            init_sum := !init_sum + init_f i
          done;
          actual = float_of_int (!init_sum + write_sum traces target)
    in
    { Workload.body;
      verify =
        (fun () ->
          check hot Hot hot_init sp.Spec.n_shared
          && check cold Cold cold_init sp.Spec.n_cold) }
  in
  { Workload.name = Printf.sprintf "synth-%d" sp.Spec.seed; instantiate }

(* ------------------------------------------------------------------ *)
(* Measurements                                                       *)

type measurement = {
  m_policy : policy;
  m_hot : array_place option;   (* as planned; notes record fallbacks *)
  m_cold : array_place option;
  m_elapsed_ps : int;
  m_shared_dram_loads : int;
  m_mpb_lines : int;
  m_verified : bool;
  m_notes : string list;
}

let run_one ?critpath (sp : Spec.t) traces policy =
  let plan = plan_of_policy sp traces policy in
  let w = make_workload sp traces plan in
  let cfg =
    { Scc.Config.default with Scc.Config.core_freq_mhz = sp.Spec.dvfs_mhz }
  in
  let r =
    Workload.run ~cfg ?critpath w
      (Workload.Rcce (Workload.Off_chip, sp.Spec.threads))
  in
  {
    m_policy = policy;
    m_hot = plan.hot_place;
    m_cold = plan.cold_place;
    m_elapsed_ps = r.Workload.elapsed_ps;
    m_shared_dram_loads =
      Scc.Stats.total_shared_dram_loads r.Workload.stats;
    m_mpb_lines = Scc.Stats.total_mpb_lines r.Workload.stats;
    m_verified = r.Workload.verified;
    m_notes = r.Workload.notes;
  }

let run_config ?critpath sp =
  let traces = traces_of_spec sp in
  List.map (fun p -> run_one ?critpath sp traces p) policies
