(** The direct execution route: a spec expands to deterministic
    per-thread access traces and replays on the simulated SCC as a
    {!Workloads.Workload.t}, under a per-array placement policy.
    [Greedy] is the paper's Algorithm 3; the others are the forced
    alternatives the sweep's loss hunter compares it against. *)

type policy = Greedy | All_dram | All_mpb | Density

val policies : policy list
(** The fixed evaluation order: greedy, all-dram, all-mpb, density. *)

val policy_to_string : policy -> string

type array_place = Mpb | Dram

val place_to_string : array_place -> string

(** {1 Access traces} *)

type target = Hot | Cold | Priv

type op = Read | Write

type access = {
  a_phase : int;
  a_target : target;
  a_op : op;
  a_idx : int;
  a_val : int;
}

val trace_of_thread : Spec.t -> int -> access array
(** Pure function of (spec, tid): the same spec yields byte-identical
    traces on every run and machine. *)

val traces_of_spec : Spec.t -> access array array

val count_accesses : access array array -> target -> int
val write_sum : access array array -> target -> int

val hot_init : int -> int
val cold_init : int -> int
(** Idempotent initial contents of the shared arrays (the C route
    re-runs the same formulas in every core's [main]). *)

(** {1 Placement plans} *)

type plan = {
  hot_place : array_place option;
  cold_place : array_place option;
}

val plan_of_policy : Spec.t -> access array array -> policy -> plan
(** [Greedy]/[Density] call Stage 4's {!Partition.Partitioner.partition}
    with the traces' exact access counts and the MPB capacity of the
    spec's core count. *)

(** {1 Running} *)

val make_workload :
  Spec.t -> access array array -> plan -> Workloads.Workload.t

type measurement = {
  m_policy : policy;
  m_hot : array_place option;  (** as planned; notes record fallbacks *)
  m_cold : array_place option;
  m_elapsed_ps : int;
  m_shared_dram_loads : int;
  m_mpb_lines : int;
  m_verified : bool;
  m_notes : string list;
}

val run_one :
  ?critpath:Scc.Critpath.t -> Spec.t -> access array array -> policy ->
  measurement
(** One simulated run at the spec's DVFS point, [threads] RCCE cores.
    With [critpath] the engine records the causal accounting, so the
    PR 9 identity [sum == wall * contexts] is checkable afterwards. *)

val run_config : ?critpath:Scc.Critpath.t -> Spec.t -> measurement list
(** All four policies over one shared trace set, in {!policies} order. *)
