(* The parameter space of the synthetic workload engine.

   One [t] pins every knob of a Graphite-style synthetic-memory kernel
   (SNIPPETS.md snippets 2-3): thread count, degree of sharing, hot and
   cold shared footprints, the private/shared access mix, the read
   fraction, instructions per core, barrier phase count, and the DVFS
   operating point.  A spec is plain integers, so a sweep row is a pure
   function of its spec and the enumeration order of a grid is the
   canonical config order everywhere (JSONL, goldens, the domain pool). *)

type t = {
  seed : int;         (* stream seed; grids derive it from the index *)
  threads : int;      (* execution units (RCCE cores), 1..48 *)
  sharing : int;      (* degree of sharing: readers per hot group, 1..threads *)
  n_shared : int;     (* hot shared array elements (8 bytes each); 0 = none *)
  n_cold : int;       (* cold shared table elements; 0 = none *)
  n_private : int;    (* per-thread private array elements; 0 = none *)
  read_pct : int;     (* reads as % of shared accesses, 0..100 *)
  shared_pct : int;   (* shared accesses as % of all accesses, 0..100 *)
  insns : int;        (* accesses per thread per phase *)
  compute : int;      (* core cycles burned between accesses *)
  phases : int;       (* barrier-separated phases, >= 1 *)
  dvfs_mhz : int;     (* core frequency, 100..1000 (section 5.1) *)
}

let validate sp =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if sp.threads < 1 || sp.threads > 48 then
    fail "threads=%d outside 1..48" sp.threads
  else if sp.sharing < 1 || sp.sharing > sp.threads then
    fail "sharing=%d outside 1..threads=%d" sp.sharing sp.threads
  else if sp.n_shared < 0 || sp.n_cold < 0 || sp.n_private < 0 then
    fail "negative array size"
  else if sp.read_pct < 0 || sp.read_pct > 100 then
    fail "read_pct=%d outside 0..100" sp.read_pct
  else if sp.shared_pct < 0 || sp.shared_pct > 100 then
    fail "shared_pct=%d outside 0..100" sp.shared_pct
  else if sp.insns < 0 then fail "insns=%d negative" sp.insns
  else if sp.compute < 0 then fail "compute=%d negative" sp.compute
  else if sp.phases < 1 then fail "phases=%d < 1" sp.phases
  else if sp.dvfs_mhz < 100 || sp.dvfs_mhz > 1000 then
    fail "dvfs_mhz=%d outside 100..1000" sp.dvfs_mhz
  else Ok ()

let describe sp =
  Printf.sprintf
    "seed=%d t=%d share=%d hot=%d cold=%d priv=%d rd=%d%% sh=%d%% \
     insns=%d ph=%d %dMHz"
    sp.seed sp.threads sp.sharing sp.n_shared sp.n_cold sp.n_private
    sp.read_pct sp.shared_pct sp.insns sp.phases sp.dvfs_mhz

(* Hot-group geometry: [sharing] threads share one contiguous slice of
   the hot array, so the number of distinct sharer groups is
   [ceil (threads / sharing)].  Degenerate sizes clamp to one element so
   every index expression stays in bounds. *)
let n_groups sp = (sp.threads + sp.sharing - 1) / sp.sharing
let group_len sp =
  if sp.n_shared = 0 then 0 else max 1 (sp.n_shared / n_groups sp)
let group_of_thread sp tid = tid / sp.sharing

let elt_bytes = 8

(* ------------------------------------------------------------------ *)
(* Grids                                                              *)

type grid = Quick | Full

let grid_to_string = function Quick -> "quick" | Full -> "full"

(* Enumeration order is the contract: config [i] of a grid is the same
   on every machine and for every [--jobs], and its seed is [base + i].
   Order: threads, sharing, n_shared, n_cold, read_pct, shared_pct,
   phases, dvfs — the first axes vary slowest. *)
let axes = function
  | Quick ->
      ( [ 2; 4; 8 ],          (* threads *)
        [ 1; 2; 4 ],          (* sharing (clamped to threads, deduped) *)
        [ 256; 2048 ],        (* n_shared *)
        [ 64; 512 ],          (* n_cold *)
        [ 50; 95; 100 ],      (* read_pct *)
        [ 80 ],               (* shared_pct *)
        [ 1; 2 ],             (* phases *)
        [ 533; 800 ],         (* dvfs_mhz *)
        200,                  (* insns *)
        8,                    (* compute cycles *)
        64 )                  (* n_private *)
  | Full ->
      ( [ 2; 4; 8; 16; 32 ],
        [ 1; 2; 4; 8; 16; 32 ],
        [ 256; 2048; 8192 ],
        [ 64; 2048 ],
        [ 50; 95; 100 ],
        [ 50; 90 ],
        [ 1; 2 ],
        [ 320; 800 ],
        400,
        8,
        128 )

let grid_seed_base = 10_000

let grid g =
  let ( threads_axis, sharing_axis, shared_axis, cold_axis, read_axis,
        mix_axis, phase_axis, dvfs_axis, insns, compute, n_private ) =
    axes g
  in
  let specs = ref [] in
  let idx = ref 0 in
  List.iter
    (fun threads ->
      let sharings =
        List.sort_uniq compare
          (List.map (fun d -> min d threads) sharing_axis)
      in
      List.iter
        (fun sharing ->
          List.iter
            (fun n_shared ->
              List.iter
                (fun n_cold ->
                  List.iter
                    (fun read_pct ->
                      List.iter
                        (fun shared_pct ->
                          List.iter
                            (fun phases ->
                              List.iter
                                (fun dvfs_mhz ->
                                  specs :=
                                    { seed = grid_seed_base + !idx;
                                      threads; sharing; n_shared; n_cold;
                                      n_private; read_pct; shared_pct;
                                      insns; compute; phases; dvfs_mhz }
                                    :: !specs;
                                  incr idx)
                                dvfs_axis)
                            phase_axis)
                        mix_axis)
                    read_axis)
                cold_axis)
            shared_axis)
        sharings)
    threads_axis;
  List.rev !specs
