(** The parameter space of the synthetic workload engine: one [t] pins
    every knob of a Graphite-style synthetic-memory kernel, and a {!grid}
    enumerates the characterization sweep in a fixed canonical order. *)

type t = {
  seed : int;        (** stream seed; grids derive it from the index *)
  threads : int;     (** execution units (RCCE cores), 1..48 *)
  sharing : int;     (** degree of sharing: readers per hot group *)
  n_shared : int;    (** hot shared array elements (8 bytes each) *)
  n_cold : int;      (** cold shared table elements *)
  n_private : int;   (** per-thread private array elements *)
  read_pct : int;    (** reads as %% of shared accesses, 0..100 *)
  shared_pct : int;  (** shared accesses as %% of all accesses, 0..100 *)
  insns : int;       (** accesses per thread per phase *)
  compute : int;     (** core cycles burned between accesses *)
  phases : int;      (** barrier-separated phases, >= 1 *)
  dvfs_mhz : int;    (** core frequency, 100..1000 *)
}

val validate : t -> (unit, string) result

val describe : t -> string
(** One line: ["seed=.. t=4 share=2 hot=2048 ..."]. *)

val n_groups : t -> int
(** Distinct sharer groups: [ceil (threads / sharing)]. *)

val group_len : t -> int
(** Hot elements per sharer group (0 when the spec has no hot array). *)

val group_of_thread : t -> int -> int

val elt_bytes : int
(** Bytes per simulated shared element (8). *)

(** {1 Grids} *)

type grid = Quick | Full

val grid_to_string : grid -> string

val grid_seed_base : int

val grid : grid -> t list
(** The sweep's configurations in canonical order; config [i] carries
    seed [grid_seed_base + i].  The enumeration is a pure function of
    the grid name — the byte-identity contract of the sweep. *)
