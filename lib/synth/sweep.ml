(* Sweep rows: one JSONL line per (config, policy) measurement, plus the
   greedy-loss detector.

   The encoding is byte-stable by construction — every field is an int
   or a fixed-vocabulary string, the field order is pinned, and a row is
   a pure function of its spec — so goldens, the jobs-N identity test,
   and cross-machine diffs all compare with [diff]. *)

type row = { r_spec : Spec.t; r_m : Kernel.measurement }

let rows_of_spec ?critpath sp =
  List.map (fun m -> { r_spec = sp; r_m = m }) (Kernel.run_config ?critpath sp)

let schema = "hsmc-sweep-1"

let place_field = function
  | None -> "none"
  | Some p -> Kernel.place_to_string p

(* Only ints and fixed-vocabulary strings reach a row, so escaping never
   actually fires; it is here so the encoder is honest JSON anyway. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jsonl_of_row { r_spec = sp; r_m = m } =
  let b = Buffer.create 256 in
  let first = ref true in
  let field k enc =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b (json_string k);
    Buffer.add_char b ':';
    Buffer.add_string b enc
  in
  let int_ k n = field k (string_of_int n) in
  let str k s = field k (json_string s) in
  Buffer.add_char b '{';
  str "schema" schema;
  int_ "seed" sp.Spec.seed;
  int_ "threads" sp.Spec.threads;
  int_ "sharing" sp.Spec.sharing;
  int_ "n_shared" sp.Spec.n_shared;
  int_ "n_cold" sp.Spec.n_cold;
  int_ "n_private" sp.Spec.n_private;
  int_ "read_pct" sp.Spec.read_pct;
  int_ "shared_pct" sp.Spec.shared_pct;
  int_ "insns" sp.Spec.insns;
  int_ "compute" sp.Spec.compute;
  int_ "phases" sp.Spec.phases;
  int_ "dvfs_mhz" sp.Spec.dvfs_mhz;
  str "policy" (Kernel.policy_to_string m.Kernel.m_policy);
  str "hot" (place_field m.Kernel.m_hot);
  str "cold" (place_field m.Kernel.m_cold);
  int_ "elapsed_ps" m.Kernel.m_elapsed_ps;
  int_ "shared_dram_loads" m.Kernel.m_shared_dram_loads;
  int_ "mpb_lines" m.Kernel.m_mpb_lines;
  int_ "verified" (if m.Kernel.m_verified then 1 else 0);
  Buffer.add_char b '}';
  Buffer.contents b

let jsonl_of_rows rows = String.concat "\n" (List.map jsonl_of_row rows)

(* ------------------------------------------------------------------ *)
(* Greedy-loss detection                                              *)

(* Algorithm 3 "loses" on a config when some forced alternative beats
   its simulated time by more than [loss_threshold_pct].  5% filters the
   sub-percent jitter-level differences the ISSUE does not care about. *)

let loss_threshold_pct = 5

type loss = {
  lo_spec : Spec.t;
  lo_greedy_ps : int;
  lo_best_policy : Kernel.policy;
  lo_best_ps : int;
  lo_pct_x100 : int;  (* loss in percent, scaled by 100 (int-stable) *)
}

let find_measurement rows policy =
  List.find_opt (fun r -> r.r_m.Kernel.m_policy = policy) rows

let loss_of_rows rows =
  match find_measurement rows Kernel.Greedy with
  | None -> None
  | Some g ->
      let alternatives =
        List.filter (fun r -> r.r_m.Kernel.m_policy <> Kernel.Greedy) rows
      in
      let best =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b ->
                if r.r_m.Kernel.m_elapsed_ps < b.r_m.Kernel.m_elapsed_ps then
                  Some r
                else acc)
          None alternatives
      in
      match best with
      | None -> None
      | Some b ->
          let g_ps = g.r_m.Kernel.m_elapsed_ps in
          let b_ps = b.r_m.Kernel.m_elapsed_ps in
          if b_ps <= 0 then None
          else
            let pct_x100 = (g_ps - b_ps) * 10_000 / b_ps in
            if pct_x100 > loss_threshold_pct * 100 then
              Some
                { lo_spec = g.r_spec;
                  lo_greedy_ps = g_ps;
                  lo_best_policy = b.r_m.Kernel.m_policy;
                  lo_best_ps = b_ps;
                  lo_pct_x100 = pct_x100 }
            else None

let loss_to_string l =
  Printf.sprintf "%s: greedy %d ps vs %s %d ps (+%d.%02d%%)"
    (Spec.describe l.lo_spec) l.lo_greedy_ps
    (Kernel.policy_to_string l.lo_best_policy)
    l.lo_best_ps (l.lo_pct_x100 / 100) (l.lo_pct_x100 mod 100)
