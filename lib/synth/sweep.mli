(** Sweep rows — one JSONL line per (config, policy) measurement — and
    the greedy-loss detector.  Rows are byte-stable: all fields are ints
    or fixed-vocabulary strings, the field order is pinned, and a row is
    a pure function of its spec. *)

type row = { r_spec : Spec.t; r_m : Kernel.measurement }

val rows_of_spec : ?critpath:Scc.Critpath.t -> Spec.t -> row list
(** All four policies over one shared trace set ({!Kernel.run_config}),
    in {!Kernel.policies} order. *)

val schema : string
(** The ["schema"] field value of every row: ["hsmc-sweep-1"]. *)

val jsonl_of_row : row -> string
val jsonl_of_rows : row list -> string
(** Rows joined by ["\n"], no trailing newline. *)

val find_measurement : row list -> Kernel.policy -> row option
(** The row of one policy within a config's row group. *)

(** {1 Greedy-loss detection} *)

val loss_threshold_pct : int
(** A config counts as a greedy loss only past this margin (5%%). *)

type loss = {
  lo_spec : Spec.t;
  lo_greedy_ps : int;
  lo_best_policy : Kernel.policy;
  lo_best_ps : int;
  lo_pct_x100 : int;  (** loss in percent, scaled by 100 *)
}

val loss_of_rows : row list -> loss option
(** Over one config's rows: [Some] when a forced alternative beats
    Algorithm 3's greedy placement by more than {!loss_threshold_pct}. *)

val loss_to_string : loss -> string
