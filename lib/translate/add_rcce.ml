open Cfront

(* Stage 5 finalization, the paper's Algorithms 9-10 plus the RCCE_APP
   convention:
   - [#include <pthread.h>] is replaced by [#include "RCCE.h"];
   - main becomes [int RCCE_APP(int argc, char **argv)];
   - [RCCE_init(&argc, &argv)] is inserted as main's first statement;
   - [RCCE_finalize()] is inserted before main's final return (or at the
     end when main does not return). *)

let app_name = "RCCE_APP"

let init_stmt =
  Ast.stmt
    (Ast.Sexpr
       (Ast.call "RCCE_init"
          [ Ast.Unary (Ast.Addr, Ast.var "argc");
            Ast.Unary (Ast.Addr, Ast.var "argv") ]))

let finalize_stmt = Ast.stmt (Ast.Sexpr (Ast.call "RCCE_finalize" []))

(* Insert finalize before the last top-level return; append when there is
   none. *)
let insert_finalize body =
  let rec go acc = function
    | [] -> List.rev (finalize_stmt :: acc)
    | [ ({ Ast.s_desc = Ast.Sreturn _; _ } as ret) ] ->
        List.rev (ret :: finalize_stmt :: acc)
    | s :: rest -> go (s :: acc) rest
  in
  go [] body

let keeps_include line =
  (* drop the pthread include; keep everything else *)
  not
    (String.length line >= 8
    && (let lowered = String.lowercase_ascii line in
        let has_pthread =
          let needle = "pthread" in
          let n = String.length needle and m = String.length lowered in
          let rec scan i =
            i + n <= m && (String.sub lowered i n = needle || scan (i + 1))
          in
          scan 0
        in
        has_pthread))

let transform env (program : Ast.program) =
  let includes =
    List.filter keeps_include program.Ast.p_includes @ [ "#include \"RCCE.h\"" ]
  in
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn when String.equal fn.Ast.f_name "main" ->
            let body = init_stmt :: insert_finalize fn.Ast.f_body in
            Ast.Gfunc
              {
                fn with
                Ast.f_name = app_name;
                f_ret = Ctype.Int;
                f_params =
                  [ ("argc", Ctype.Int);
                    ("argv", Ctype.Ptr (Ctype.Ptr Ctype.Char)) ];
                f_body = body;
              }
        | Ast.Gfunc _ | Ast.Gvar _ | Ast.Gproto _ -> g)
      program.Ast.p_globals
  in
  Pass.note env "add-rcce: main renamed to %s; init/finalize inserted"
    app_name;
  { Ast.p_includes = includes; p_globals = globals }

let pass =
  { Pass.name = "add-rcce"; transform; forbids_after = [];
    must_follow = [ "shared-rewrite" ] }
