open Cfront

(* Final tidy-up of the converted application:
   - local declarations whose variable is no longer referenced anywhere in
     the program are dropped, provided their initializer has no effects
     (the create/join loop counters and the pthread_create return variable
     end up dead after the thread-to-process conversion);
   - consecutive identical RCCE_barrier statements collapse into one
     (several join statements in one loop each lowered to a barrier). *)

(* Every name referenced in any expression of the program. *)
let referenced_names program =
  let names = Hashtbl.create 64 in
  Visit.iter_exprs_of_program
    (fun e ->
      match e with
      | Ast.Var name -> Hashtbl.replace names name ()
      | _ -> ())
    program;
  names

let is_barrier (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sexpr (Ast.Call ("RCCE_barrier", _)) -> true
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _
  | Ast.Sdo _ | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Snull -> false

let rec collapse_barriers = function
  | [] -> []
  | a :: b :: rest when is_barrier a && is_barrier b ->
      collapse_barriers (a :: rest)
  | s :: rest ->
      let s =
        match s.Ast.s_desc with
        | Ast.Sblock stmts ->
            { s with Ast.s_desc = Ast.Sblock (collapse_barriers stmts) }
        | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
        | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
        | Ast.Snull -> s
      in
      s :: collapse_barriers rest

let transform env (program : Ast.program) =
  let used = referenced_names program in
  let removed = ref [] in
  let keep (d : Ast.decl) =
    let dead =
      (not (Hashtbl.mem used d.Ast.d_name))
      && (match d.Ast.d_init with
         | None -> true
         | Some (Ast.Init_expr e) -> Constfold.is_pure e
         | Some (Ast.Init_list es) -> List.for_all Constfold.is_pure es)
    in
    if dead then removed := d.Ast.d_name :: !removed;
    not dead
  in
  let program =
    Visit.rewrite_program
      (fun s ->
        match s.Ast.s_desc with
        | Ast.Sdecl ds ->
            let kept = List.filter keep ds in
            if List.length kept = List.length ds then None
            else if kept = [] then Some []
            else Some [ { s with Ast.s_desc = Ast.Sdecl kept } ]
        | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
        | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
        | Ast.Snull -> None)
      program
  in
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn ->
            Ast.Gfunc
              { fn with Ast.f_body = collapse_barriers fn.Ast.f_body }
        | Ast.Gvar _ | Ast.Gproto _ -> g)
      program.Ast.p_globals
  in
  if !removed <> [] then
    Pass.note env "cleanup: removed dead declarations: %s"
      (String.concat ", " (List.rev !removed));
  { program with Ast.p_globals = globals }

let pass =
  { Pass.name = "cleanup"; transform; forbids_after = [];
    must_follow = [ "optimize" ] }
