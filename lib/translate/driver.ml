open Cfront

(* The Driver, in Cetus terms: runs the analysis phase (Stages 1-3), the
   partitioner (Stage 4), and the transform passes (Stage 5) over one
   compilation session, producing the RCCE program plus a report of what
   happened.  All facts come from the session's registry, so a caller
   that already demanded them (e.g. [hsmcc check] before an internal
   translate) pays for each analysis exactly once. *)

type report = {
  analysis : Analysis.Pipeline.t;
  partition : Partition.Partitioner.result;
  notes : string list;        (* pass remarks, in emission order *)
  thread_count : int option;  (* statically determined thread count *)
  diagnostics : Diag.t list;  (* static race detector findings *)
}

type error =
  | Parse_error of string
  | Too_many_threads of int * int
  | Too_many_locks of int
  | Inconsistent_ir of string * string

let error_to_string = function
  | Parse_error msg -> msg
  | Too_many_threads (threads, cores) ->
      Printf.sprintf
        "program creates %d threads but the target has %d cores \
         (many-to-one mapping is future work, see paper section 7.2)"
        threads cores
  | Too_many_locks n ->
      Printf.sprintf
        "program uses more distinct mutexes than the target's %d \
         test-and-set registers" n
  | Inconsistent_ir (pass, diag) ->
      Printf.sprintf "pass '%s' produced inconsistent IR: %s" pass diag

exception Error of error

let passes =
  [
    Thread_to_process.pass;
    Mutex_convert.pass;
    Remove_pthread.pass;
    Shared_rewrite.pass;
    Add_rcce.pass;
    Cleanup.pass;
  ]

let passes_for (options : Pass.options) =
  let mpb = options.Pass.optimize || options.Pass.opt_mpb_cache in
  let pre = options.Pass.optimize || options.Pass.opt_pre in
  if mpb || pre || options.Pass.optimize then
    [ Thread_to_process.pass; Mutex_convert.pass; Remove_pthread.pass;
      Shared_rewrite.pass; Add_rcce.pass ]
    @ (if mpb then [ Opt_mpb_cache.pass ] else [])
    @ (if pre then [ Opt_pre.pass ] else [])
    (* folding runs after the locality passes (it can clean up their
       emitted code) and before cleanup so folded-away uses make
       declarations dead *)
    @ (if options.Pass.optimize then [ Optimize.pass ] else [])
    @ [ Cleanup.pass ]
  else passes

let translate_session session =
  let ctx = Pass.ctx_of_session session in
  let analysis = Pass.analysis ctx in
  (* the static race check and the thread count ride on the source
     program's facts: demand them before any pass publishes a new
     generation (memoized — free if the caller already checked) *)
  let diagnostics = Session.race_diags session in
  let thread_count =
    Analysis.Thread_analysis.static_thread_count
      analysis.Analysis.Pipeline.threads
  in
  match
    Pass.run_all
      (passes_for (Session.options session))
      ctx (Session.program session)
  with
  | translated ->
      let report =
        {
          analysis;
          partition = Pass.partition ctx;
          notes = Pass.notes ctx;
          thread_count;
          diagnostics;
        }
      in
      (translated, report)
  | exception Thread_to_process.Too_many_threads (threads, cores) ->
      raise (Error (Too_many_threads (threads, cores)))
  | exception Mutex_convert.Too_many_locks n ->
      raise (Error (Too_many_locks n))
  | exception Pass.Inconsistent (pass, diag) ->
      raise (Error (Inconsistent_ir (pass, diag)))

let translate_program ?(options = Pass.default_options) program =
  translate_session (Session.create ~options program)

let translate_source ?options ?file src =
  match Parser.program ?file src with
  | program -> translate_program ?options program
  | exception Srcloc.Error (loc, msg) ->
      raise
        (Error (Parse_error (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)))

let translate_to_string ?options ?file src =
  let program, report = translate_source ?options ?file src in
  (Pretty.program program, report)
