open Cfront

(** The Driver: analysis (Stages 1–3), partitioning (Stage 4) and the
    transform passes (Stage 5) in series. *)

type report = {
  analysis : Analysis.Pipeline.t;
  partition : Partition.Partitioner.result;
  notes : string list;        (** pass remarks, in emission order *)
  thread_count : int option;  (** statically determined thread count *)
  diagnostics : Diag.t list;
      (** static race detector findings on the input program *)
}

type error =
  | Parse_error of string
  | Too_many_threads of int * int
  | Too_many_locks of int
  | Inconsistent_ir of string * string

val error_to_string : error -> string

exception Error of error

val passes : Pass.t list
(** The paper-faithful Stage 5 pipeline, in execution order. *)

val passes_for : Pass.options -> Pass.t list
(** The pipeline for the given options (inserts {!Optimize} when
    requested). *)

val translate_session : Session.t -> Ast.program * report
(** Translate the session's program, demanding every Stage 1–4 fact from
    the session's memoized registry — analyses a caller already forced
    (e.g. a race check) are not recomputed.  Each transform publishes a
    new program generation into the session, so afterwards
    [Session.program] is the translated program and [Session.timings]
    carries the per-provider/per-pass instrumentation.
    @raise Error on any translation failure. *)

val translate_program :
  ?options:Pass.options -> Ast.program -> Ast.program * report
(** {!translate_session} on a fresh single-use session.
    @raise Error on any translation failure. *)

val translate_source :
  ?options:Pass.options -> ?file:string -> string -> Ast.program * report

val translate_to_string :
  ?options:Pass.options -> ?file:string -> string -> string * report
(** Convenience: parse, translate and pretty-print back to C source. *)
