open Cfront

(* Stage 5 synchronization conversion.

   A Pthread mutex cannot exist in the multi-process program; the SCC
   instead offers one test-and-set register per core, exposed by RCCE as
   [RCCE_acquire_lock(ue)] / [RCCE_release_lock(ue)].  Each distinct mutex
   variable is assigned the test-and-set register of a distinct core, in
   order of first appearance:

     pthread_mutex_lock(&m)   ->  RCCE_acquire_lock(k)
     pthread_mutex_unlock(&m) ->  RCCE_release_lock(k)

   init/destroy calls and the mutex declarations themselves are removed by
   the remove-pthread pass that runs afterwards. *)

let rec mutex_name_of_arg = function
  | Ast.Var name -> Some name
  | Ast.Unary (Ast.Addr, e) | Ast.Cast (_, e) -> mutex_name_of_arg e
  | Ast.Index (e, _) -> mutex_name_of_arg e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Sizeof_type _ | Ast.Sizeof_expr _ | Ast.Comma _ -> None

type lock_map = {
  mutable table : (string * int) list;  (* mutex name -> lock index *)
  ncores : int;
}

exception Too_many_locks of int

let lock_index map name =
  match List.assoc_opt name map.table with
  | Some k -> k
  | None ->
      let k = List.length map.table in
      if k >= map.ncores then raise (Too_many_locks map.ncores);
      map.table <- map.table @ [ (name, k) ];
      k

let transform env (program : Ast.program) =
  let map = { table = []; ncores = (Pass.options env).Pass.ncores } in
  let program =
    Visit.map_program_exprs
      (fun e ->
        match e with
        | Ast.Call ("pthread_barrier_wait", [ _ ]) ->
            (* every process participates, so a pthread barrier maps to
               the whole-world RCCE barrier *)
            Ast.call "RCCE_barrier"
              [ Ast.Unary (Ast.Addr, Ast.var "RCCE_COMM_WORLD") ]
        | Ast.Call (("pthread_mutex_lock" | "pthread_mutex_unlock") as op,
                    [ arg ]) -> begin
            match mutex_name_of_arg arg with
            | Some name ->
                let k = lock_index map name in
                let rcce =
                  if String.equal op "pthread_mutex_lock" then
                    "RCCE_acquire_lock"
                  else "RCCE_release_lock"
                in
                Ast.call rcce [ Ast.int k ]
            | None -> e
          end
        | _ -> e)
      program
  in
  List.iter
    (fun (name, k) ->
      Pass.note env "mutex-convert: mutex '%s' mapped to test-and-set %d"
        name k)
    map.table;
  program

let pass =
  { Pass.name = "mutex-convert"; transform; forbids_after = [];
    must_follow = [ "threads-to-processes" ] }
