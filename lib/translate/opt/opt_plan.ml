open Cfront

(* The locality plan: which shared allocations the optimizer may touch,
   and how.

   Built on the translated (RCCE) generation, after shared-rewrite has
   turned every shared global into a pointer with an explicit cast
   RCCE_shmalloc of [sizeof(T) * n] at the top of the entry function.
   The plan classifies each such allocation:

   - {e escaped}: the pointer is used other than as an index base, a
     scalar dereference, or its own allocation — e.g. passed to a call
     or stored somewhere.  Escaped pointers are untouchable.
   - {e read-only after the init prefix}: every write lands in the entry
     function strictly before the {e insertion point} — the first
     top-level statement that calls into a defined function (where the
     per-core workers take over).  Such data is immutable for the whole
     parallel phase.
   - {e MPB candidate}: read-only multi-element array of scalar element
     type whose bytes fit the owning core's MPB slice, ranked by the
     access-count estimate of its reads.  Capacity is checked by
     replaying the program's collective [RCCE_malloc] sequence against a
     fresh {!Scc.Memmap} and dry-running the candidate's striped
     allocation, exactly as the interpreter will. *)

type shared_alloc = {
  sa_name : string;
  sa_elt : Ctype.t;
  sa_count : int;
  sa_alloc_fn : string;    (* RCCE_shmalloc or RCCE_malloc *)
  sa_index : int;          (* top-level statement index in entry *)
}

type mpb_candidate = {
  mc_name : string;
  mc_elt : Ctype.t;
  mc_count : int;
  mc_bytes : int;
  mc_reads : int;          (* access-count estimate *)
  mc_owner : int;          (* MPB slice core: collective-call order mod ncores *)
}

type t = {
  entry : string;
  insert_at : int option;
  allocs : shared_alloc list;
  escaped : string list;
  read_only : string list;  (* non-escaped, read-only after the init prefix *)
  mpb : mpb_candidate list; (* selected, hottest first, capacity-checked *)
  rejected : (string * string) list;  (* candidate, reason *)
}

let entry_name (program : Ast.program) =
  if Ast.find_function program "RCCE_APP" <> None then "RCCE_APP" else "main"

let entry_body program =
  match Ast.find_function program (entry_name program) with
  | Some fn -> fn.Ast.f_body
  | None -> []

(* --- allocation discovery ------------------------------------------------- *)

let alloc_of_stmt i (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sexpr
      (Ast.Assign
         ( None,
           Ast.Var v,
           Ast.Cast
             ( Ctype.Ptr elt,
               Ast.Call
                 ( (("RCCE_shmalloc" | "RCCE_malloc") as fn),
                   [ Ast.Binary (Ast.Mul, Ast.Sizeof_type ty, Ast.Int_lit n) ]
                 ) ) ))
    when Ctype.equal elt ty && n >= 1 ->
      Some { sa_name = v; sa_elt = elt; sa_count = n; sa_alloc_fn = fn;
             sa_index = i }
  | _ -> None

let discover_allocs program =
  entry_body program |> List.mapi alloc_of_stmt |> List.filter_map Fun.id

(* --- the insertion point --------------------------------------------------- *)

(* First top-level entry statement that calls into a defined function:
   from here on the per-core workers run, so a fill-and-barrier prologue
   inserted at this index executes after the whole init prefix and
   before any parallel use. *)
let stmt_calls_defined defined (s : Ast.stmt) =
  let found = ref false in
  Visit.iter_exprs_of_stmt (fun e ->
      match e with
      | Ast.Call (name, _) when List.mem name defined -> found := true
      | _ -> ())
    s;
  !found

let insertion_point program =
  let entry = entry_name program in
  let defined =
    List.filter_map
      (fun (fn : Ast.func) ->
        if String.equal fn.Ast.f_name entry then None else Some fn.Ast.f_name)
      (Ast.functions program)
  in
  let rec scan i = function
    | [] -> None
    | s :: rest ->
        if stmt_calls_defined defined s then Some i else scan (i + 1) rest
  in
  scan 0 (entry_body program)

(* --- use classification ---------------------------------------------------- *)

(* A use of [v] is tame when it only ever appears as an index base
   [v[i]], a scalar dereference [*v], or the left-hand side of its own
   allocation; any bare occurrence (call argument, pointer arithmetic,
   aliasing store) escapes. *)
let expr_escapes v e =
  let rec scan e =
    match e with
    | Ast.Var u -> String.equal u v
    | Ast.Index (Ast.Var u, i) when String.equal u v -> scan i
    | Ast.Unary (Ast.Deref, Ast.Var u) when String.equal u v -> false
    | Ast.Assign (None, Ast.Var u, rhs) when String.equal u v -> (
        (* its own allocation keeps the pointer tame *)
        match rhs with
        | Ast.Cast (_, Ast.Call (("RCCE_shmalloc" | "RCCE_malloc"), args)) ->
            List.exists scan args
        | _ -> true)
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Sizeof_type _ -> false
    | Ast.Unary (_, a) | Ast.Cast (_, a) | Ast.Sizeof_expr a -> scan a
    | Ast.Binary (_, a, b) | Ast.Assign (_, a, b) | Ast.Index (a, b)
    | Ast.Comma (a, b) -> scan a || scan b
    | Ast.Cond (a, b, c) -> scan a || scan b || scan c
    | Ast.Call (_, args) -> List.exists scan args
  in
  scan e

(* The contextual scanner must start from expression roots (a blind
   subexpression walk would flag the tame [Index (Var v, _)]'s own
   child), so iterate statement-shallow expressions, not every node. *)
let escapes v program =
  let found = ref false in
  let check_expr e = if expr_escapes v e then found := true in
  List.iter
    (fun g ->
      match g with
      | Ast.Gfunc fn ->
          List.iter (Visit.iter_stmt (fun s ->
              List.iter check_expr (Visit.shallow_exprs s)))
            fn.Ast.f_body
      | Ast.Gvar d ->
          List.iter check_expr (Visit.exprs_of_decl d)
      | Ast.Gproto _ -> ())
    program.Ast.p_globals;
  !found

(* Writes to [v]'s pointee: [v[i] = e], [*v = e], compound assignments
   and increments through either shape. *)
let expr_writes v e =
  let is_lv = function
    | Ast.Index (Ast.Var u, _) | Ast.Unary (Ast.Deref, Ast.Var u) ->
        String.equal u v
    | _ -> false
  in
  Visit.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Assign (_, lv, _) when is_lv lv -> true
      | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), lv)
        when is_lv lv -> true
      | _ -> false)
    false e

let stmt_writes v s =
  let found = ref false in
  Visit.iter_stmt
    (fun s ->
      List.iter
        (fun e -> if expr_writes v e then found := true)
        (Visit.shallow_exprs s))
    s;
  !found

(* All writes land in the entry function, at top-level indices before
   the insertion point. *)
let read_only_after_prefix program ~insert_at v =
  let entry = entry_name program in
  let ok_in_entry =
    List.for_all
      (fun (i, s) -> (not (stmt_writes v s)) || i < insert_at)
      (List.mapi (fun i s -> (i, s)) (entry_body program))
  in
  let ok_elsewhere =
    List.for_all
      (fun (fn : Ast.func) ->
        String.equal fn.Ast.f_name entry
        || not (List.exists (stmt_writes v) fn.Ast.f_body))
      (Ast.functions program)
  in
  ok_in_entry && ok_elsewhere

(* --- MPB capacity dry-run --------------------------------------------------- *)

(* The interpreter satisfies the k-th collective RCCE_malloc of the run
   from the MPB slice of core [k mod ncores].  Replay the pre-existing
   top-level collective allocations, then dry-run each candidate against
   a fresh memory map: a candidate is kept only when its striped
   allocation fits the next slice. *)
let countable_mpb_bytes program =
  (* collective calls must all be countable top-level entry allocations;
     an RCCE_malloc anywhere else makes the call order unknowable *)
  let top_level = discover_allocs program in
  let top_names =
    List.filter_map
      (fun a -> if a.sa_alloc_fn = "RCCE_malloc" then Some a else None)
      top_level
  in
  let total_calls = ref 0 in
  Visit.iter_exprs_of_program (fun e ->
      match e with
      | Ast.Call ("RCCE_malloc", _) -> incr total_calls
      | _ -> ())
    program;
  if !total_calls <> List.length top_names then None
  else
    Some
      (List.map (fun a -> Ctype.sizeof a.sa_elt * a.sa_count) top_names)

let select_mpb ~ncores ~existing candidates =
  let cfg = Scc.Config.default in
  if ncores <= 0 || ncores > Scc.Config.n_cores cfg then ([], candidates |> List.map (fun c -> (c.mc_name, "core count out of range")))
  else begin
    let mm = Scc.Memmap.create cfg in
    let k = ref 0 in
    List.iter
      (fun bytes ->
        (match
           Scc.Memmap.alloc_mpb_striped mm ~cores:[ !k mod ncores ] ~bytes
         with
        | (_ : int list) -> ()
        | exception Scc.Memmap.Out_of_memory _ -> ());
        incr k)
      existing;
    let accepted = ref [] and rejected = ref [] in
    List.iter
      (fun c ->
        let owner = !k mod ncores in
        match
          Scc.Memmap.alloc_mpb_striped mm ~cores:[ owner ] ~bytes:c.mc_bytes
        with
        | (_ : int list) ->
            accepted := { c with mc_owner = owner } :: !accepted;
            incr k
        | exception Scc.Memmap.Out_of_memory _ ->
            rejected :=
              ( c.mc_name,
                Printf.sprintf "does not fit MPB slice of core %d (%d bytes)"
                  owner c.mc_bytes )
              :: !rejected)
      candidates;
    (List.rev !accepted, List.rev !rejected)
  end

(* --- the plan --------------------------------------------------------------- *)

let build ~ncores ~(access : Analysis.Access_count.t) (program : Ast.program) =
  let entry = entry_name program in
  let allocs = discover_allocs program in
  let insert_at = insertion_point program in
  let escaped =
    List.filter_map
      (fun a -> if escapes a.sa_name program then Some a.sa_name else None)
      allocs
  in
  let read_only =
    match insert_at with
    | None -> []
    | Some p ->
        List.filter_map
          (fun a ->
            if
              (not (List.mem a.sa_name escaped))
              && read_only_after_prefix program ~insert_at:p a.sa_name
            then Some a.sa_name
            else None)
          allocs
  in
  let candidates =
    List.filter_map
      (fun a ->
        if
          a.sa_count >= 2
          && Ctype.is_scalar a.sa_elt
          && List.mem a.sa_name read_only
          && String.equal a.sa_alloc_fn "RCCE_shmalloc"
        then
          Some
            { mc_name = a.sa_name; mc_elt = a.sa_elt; mc_count = a.sa_count;
              mc_bytes = Ctype.sizeof a.sa_elt * a.sa_count;
              mc_reads =
                Analysis.Access_count.reads access
                  (Ir.Var_id.global a.sa_name);
              mc_owner = 0 }
        else None)
      allocs
    |> List.sort (fun a b -> compare b.mc_reads a.mc_reads)
  in
  let mpb, rejected =
    match countable_mpb_bytes program with
    | None ->
        ( [],
          List.map
            (fun c -> (c.mc_name, "collective RCCE_malloc order unknowable"))
            candidates )
    | Some existing -> select_mpb ~ncores ~existing candidates
  in
  { entry; insert_at; allocs; escaped; read_only; mpb; rejected }

let find_alloc t name =
  List.find_opt (fun a -> String.equal a.sa_name name) t.allocs

let summary t =
  Printf.sprintf
    "entry=%s insert_at=%s allocs=[%s] read_only=[%s] mpb=[%s]"
    t.entry
    (match t.insert_at with None -> "-" | Some i -> string_of_int i)
    (String.concat "," (List.map (fun a -> a.sa_name) t.allocs))
    (String.concat "," t.read_only)
    (String.concat ","
       (List.map
          (fun c -> Printf.sprintf "%s(%dB@%d)" c.mc_name c.mc_bytes c.mc_owner)
          t.mpb))
