open Cfront

(** The locality plan: which shared allocations the optimizer may touch.

    Built on the translated (RCCE) generation.  Classifies every cast
    RCCE_shmalloc / RCCE_malloc of [sizeof(T) * n] assigned to a global
    pointer at the top of the entry function: escaped pointers are
    untouchable; data whose
    writes all land before the {e insertion point} (the first top-level
    entry statement calling a defined function) is read-only for the
    whole parallel phase; hot read-only arrays of scalar elements that
    fit an MPB slice become software-cache candidates, ranked by the
    access-count estimates and capacity-checked against
    {!Scc.Memmap.alloc_mpb_striped} by replaying the program's
    collective allocation order. *)

type shared_alloc = {
  sa_name : string;
  sa_elt : Ctype.t;
  sa_count : int;
  sa_alloc_fn : string;
  sa_index : int;  (** top-level statement index in the entry function *)
}

type mpb_candidate = {
  mc_name : string;
  mc_elt : Ctype.t;
  mc_count : int;
  mc_bytes : int;
  mc_reads : int;
  mc_owner : int;  (** MPB slice core: collective-call order mod ncores *)
}

type t = {
  entry : string;
  insert_at : int option;
  allocs : shared_alloc list;
  escaped : string list;
  read_only : string list;
  mpb : mpb_candidate list;
  rejected : (string * string) list;
}

val entry_name : Ast.program -> string
(** ["RCCE_APP"] when defined, else ["main"]. *)

val build :
  ncores:int -> access:Analysis.Access_count.t -> Ast.program -> t

val find_alloc : t -> string -> shared_alloc option

val summary : t -> string
(** One-line rendering, for notes and tests. *)
