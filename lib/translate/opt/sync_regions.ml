open Cfront

(* Sync-free region analysis.

   A region is a maximal set of CFG nodes connected by edges that do not
   cross a synchronization point.  Within one region no other core's
   write can be ordered between two reads of the same shared location by
   this core (in a data-race-free program every cross-thread ordering
   goes through a synchronization operation), so a shared load is
   redundant with an earlier one from the same region — the legality
   backbone of the PRE pass (El-Zawawy & Nayel's multi-threaded PRE,
   restricted to regions instead of their assertion language).

   Synchronization points are the RCCE primitives (barrier, test-and-set
   locks, flags, the collective allocators) and their Pthread
   counterparts, so the analysis is meaningful both on the source
   program and on the translated generations.  A call to a defined
   function that (transitively) performs synchronization is itself a
   synchronization point — the callee summary is a fixpoint over the
   call graph. *)

let sync_primitives =
  [
    "RCCE_barrier"; "RCCE_acquire_lock"; "RCCE_release_lock";
    "RCCE_flag_write"; "RCCE_flag_read"; "RCCE_wait_until";
    "RCCE_init"; "RCCE_finalize"; "RCCE_shmalloc"; "RCCE_malloc";
    "RCCE_free";
    "pthread_create"; "pthread_join"; "pthread_exit";
    "pthread_mutex_lock"; "pthread_mutex_unlock";
    "pthread_barrier_wait"; "pthread_barrier_init";
    "pthread_cond_wait"; "pthread_cond_signal"; "pthread_cond_broadcast";
  ]

let is_sync_primitive name = List.mem name sync_primitives

type func_regions = {
  fr_name : string;
  fr_region : int array;  (* CFG node id -> region id *)
  fr_count : int;         (* distinct regions *)
  fr_boundaries : int;    (* synchronization nodes *)
}

type t = {
  funcs : func_regions list;
  has_sync : (string, bool) Hashtbl.t;
      (* defined function -> performs synchronization, transitively *)
}

(* --- callee summaries ---------------------------------------------------- *)

let direct_calls (fn : Ast.func) =
  let acc = ref [] in
  List.iter
    (Visit.iter_exprs_of_stmt (fun e ->
         match e with
         | Ast.Call (name, _) -> acc := name :: !acc
         | _ -> ()))
    fn.Ast.f_body;
  !acc

let compute_has_sync (program : Ast.program) =
  let funcs = Ast.functions program in
  let tbl = Hashtbl.create 16 in
  List.iter (fun (fn : Ast.func) -> Hashtbl.replace tbl fn.Ast.f_name false)
    funcs;
  let calls =
    List.map (fun (fn : Ast.func) -> (fn.Ast.f_name, direct_calls fn)) funcs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (name, callees) ->
        if not (Hashtbl.find tbl name) then
          let syncs =
            List.exists
              (fun callee ->
                is_sync_primitive callee
                || (match Hashtbl.find_opt tbl callee with
                   | Some b -> b
                   | None -> false))
              callees
          in
          if syncs then begin
            Hashtbl.replace tbl name true;
            changed := true
          end)
      calls
  done;
  tbl

let func_has_sync t name =
  match Hashtbl.find_opt t.has_sync name with Some b -> b | None -> false

(* Does evaluating [e] reach a synchronization point? *)
let expr_has_sync t e =
  Visit.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Call (name, _) -> is_sync_primitive name || func_has_sync t name
      | _ -> false)
    false e

(* Does [s] (or anything nested in it) reach a synchronization point? *)
let stmt_has_sync t s =
  let found = ref false in
  Visit.iter_exprs_of_stmt (fun e ->
      match e with
      | Ast.Call (name, _)
        when is_sync_primitive name || func_has_sync t name ->
          found := true
      | _ -> ())
    s;
  !found

(* --- region ids over one CFG --------------------------------------------- *)

(* Union-find over node ids; only edges between two non-sync nodes are
   united, so components are exactly the sync-free regions.  Sync nodes
   are their own (boundary) regions. *)
let regions_of_cfg t (cfg : Ir.Cfg.t) =
  let n = Ir.Cfg.length cfg in
  let node_sync =
    Array.init n (fun i ->
        let node = Ir.Cfg.node cfg i in
        List.exists (expr_has_sync t) (Ir.Cfg.exprs_of_node node))
  in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  Array.iteri
    (fun i node ->
      if not node_sync.(i) then
        List.iter
          (fun j -> if not node_sync.(j) then union i j)
          node.Ir.Cfg.succs)
    cfg.Ir.Cfg.nodes;
  (* densify region ids in node order *)
  let region = Array.make n (-1) in
  let next = ref 0 in
  let ids = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if node_sync.(i) then begin
      region.(i) <- !next;
      incr next
    end
    else begin
      let root = find i in
      match Hashtbl.find_opt ids root with
      | Some id -> region.(i) <- id
      | None ->
          Hashtbl.replace ids root !next;
          region.(i) <- !next;
          incr next
    end
  done;
  let boundaries = Array.fold_left (fun a b -> if b then a + 1 else a) 0 node_sync in
  (region, !next, boundaries)

let analyze ~cfgs (program : Ast.program) =
  let has_sync = compute_has_sync program in
  let t0 = { funcs = []; has_sync } in
  let funcs =
    List.map
      (fun (name, cfg) ->
        let fr_region, fr_count, fr_boundaries = regions_of_cfg t0 cfg in
        { fr_name = name; fr_region; fr_count; fr_boundaries })
      cfgs
  in
  { funcs; has_sync = t0.has_sync }

let func_regions t name =
  List.find_opt (fun fr -> String.equal fr.fr_name name) t.funcs

let region_count t name =
  match func_regions t name with Some fr -> Some fr.fr_count | None -> None

let summary t =
  t.funcs
  |> List.map (fun fr ->
         Printf.sprintf "%s: %d region(s), %d sync node(s)" fr.fr_name
           fr.fr_count fr.fr_boundaries)
  |> String.concat "; "
