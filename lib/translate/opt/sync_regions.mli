open Cfront

(** Sync-free region analysis over the per-function CFGs.

    A region is a maximal set of CFG nodes connected without crossing a
    synchronization point (RCCE barrier/lock/flag/collective operations,
    their Pthread counterparts, or a call into a defined function that
    transitively synchronizes).  In a data-race-free program no other
    core's write can be ordered between two same-region reads, so shared
    loads are stable within a region — the legality backbone of the PRE
    pass. *)

val sync_primitives : string list
val is_sync_primitive : string -> bool

type func_regions = {
  fr_name : string;
  fr_region : int array;  (** CFG node id -> region id *)
  fr_count : int;         (** distinct regions *)
  fr_boundaries : int;    (** synchronization nodes *)
}

type t = {
  funcs : func_regions list;
  has_sync : (string, bool) Hashtbl.t;
}

val analyze : cfgs:(string * Ir.Cfg.t) list -> Ast.program -> t

val func_has_sync : t -> string -> bool
(** Does calling this defined function (transitively) synchronize? *)

val expr_has_sync : t -> Ast.expr -> bool
val stmt_has_sync : t -> Ast.stmt -> bool
(** Does evaluating this expression / statement (including everything
    nested in it) reach a synchronization point? *)

val func_regions : t -> string -> func_regions option
val region_count : t -> string -> int option

val summary : t -> string
(** One line per function, for notes and tests. *)
