open Cfront

(* MPB software caching of hot read-only shared data.

   Uncached shared DRAM costs a full memory-controller round trip on
   every access while the on-die MPB SRAM answers in a few mesh hops, so
   shared data that is written only during the entry function's init
   prefix and read throughout the parallel phase is better served from
   an MPB slice.  For every candidate the session's locality plan
   selected (read-only multi-element scalar array, hot by access-count
   estimate, capacity-checked against the MPB slices), this pass emits
   at the plan's insertion point — after the whole init prefix, before
   the first call into a worker:

     v__mpb = RCCE_malloc(sizeof(T) * n), cast;   every core, collective
     for (i = myID; i < n; i += nues) v__mpb[i] = v[i];
     RCCE_barrier(&RCCE_COMM_WORLD);              publish the fill

   The fill is striped across the cores — each copies elements myID,
   myID + nues, ... of the DRAM original into the cache — because a
   single-core fill serializes n expensive uncached reads while every
   other core waits at the barrier, which on low-reuse kernels costs
   more than the caching saves.

   and redirects every read [v[e]] in the parallel phase (all functions
   but the entry, plus entry statements at or after the insertion point)
   to [v__mpb[e]].  The collective RCCE_malloc is unguarded: every core
   must make the identical call sequence, and the k-th call of the run
   is served from the MPB slice of core k mod ncores — the same striping
   the plan's capacity dry-run replayed. *)

let mpb_suffix = "__mpb"
let fill_index_var = "__mpb_i"
let fill_nues_var = "__mpb_nues"

let mpb_name v = v ^ mpb_suffix

let barrier_stmt =
  Ast.stmt
    (Ast.Sexpr
       (Ast.call "RCCE_barrier" [ Ast.Unary (Ast.Addr, Ast.var "RCCE_COMM_WORLD") ]))

(* v__mpb = [cast to pointer-to-T] RCCE_malloc(sizeof(T) * n); *)
let alloc_stmt (c : Opt.Opt_plan.mpb_candidate) =
  let size =
    Ast.Binary (Ast.Mul, Ast.Sizeof_type c.Opt.Opt_plan.mc_elt,
                Ast.int c.Opt.Opt_plan.mc_count)
  in
  Ast.stmt
    (Ast.Sexpr
       (Ast.assign
          (Ast.var (mpb_name c.Opt.Opt_plan.mc_name))
          (Ast.Cast (Ctype.Ptr c.Opt.Opt_plan.mc_elt,
                     Ast.call "RCCE_malloc" [ size ]))))

(* for (i = myID; i < n; i = i + nues) v__mpb[i] = v[i]; *)
let fill_stmt (c : Opt.Opt_plan.mpb_candidate) =
  let v = c.Opt.Opt_plan.mc_name in
  let idx = Ast.var fill_index_var in
  let body =
    Ast.stmt
      (Ast.Sexpr
         (Ast.assign
            (Ast.Index (Ast.var (mpb_name v), idx))
            (Ast.Index (Ast.var v, idx))))
  in
  Ast.stmt
    (Ast.Sfor
       ( Ast.For_expr
           (Ast.assign idx (Ast.var Thread_to_process.core_id_var)),
         Some (Ast.Binary (Ast.Lt, idx, Ast.int c.Opt.Opt_plan.mc_count)),
         Some (Ast.assign idx (Ast.Binary (Ast.Add, idx, Ast.var fill_nues_var))),
         Ast.stmt (Ast.Sblock [ body ]) ))

let redirect names e =
  match e with
  | Ast.Index (Ast.Var v, i) when List.mem v names ->
      Ast.Index (Ast.var (mpb_name v), i)
  | e -> e

let has_core_id_prologue body =
  List.exists
    (fun (s : Ast.stmt) ->
      match s.Ast.s_desc with
      | Ast.Sdecl ds ->
          List.exists
            (fun (d : Ast.decl) ->
              String.equal d.Ast.d_name Thread_to_process.core_id_var)
            ds
      | _ -> false)
    body

let transform env (program : Ast.program) =
  let plan = Session.opt_plan (Pass.session env) in
  let entry = plan.Opt.Opt_plan.entry in
  let entry_fn = Ast.find_function program entry in
  match (plan.Opt.Opt_plan.insert_at, plan.Opt.Opt_plan.mpb, entry_fn) with
  | None, _, _ | _, [], _ | _, _, None ->
      List.iter
        (fun (name, why) -> Pass.note env "opt-mpb-cache: '%s' skipped: %s" name why)
        plan.Opt.Opt_plan.rejected;
      if plan.Opt.Opt_plan.mpb = [] then
        Pass.note env "opt-mpb-cache: no eligible shared data";
      program
  | Some p, candidates, Some fn when has_core_id_prologue fn.Ast.f_body ->
      let names = List.map (fun c -> c.Opt.Opt_plan.mc_name) candidates in
      (* one index variable serves every fill loop *)
      let prologue =
        Ast.stmt (Ast.Sdecl [ Ast.decl fill_index_var Ctype.Int ])
        :: Ast.stmt
             (Ast.Sdecl
                [ Ast.decl
                    ~init:(Ast.Init_expr (Ast.call "RCCE_num_ues" []))
                    fill_nues_var Ctype.Int ])
        :: List.concat_map
             (fun c -> [ alloc_stmt c; fill_stmt c ])
             candidates
        @ [ barrier_stmt ]
      in
      (* redirect the parallel phase first, then splice the prologue at
         the insertion point (the fill loops must keep reading the DRAM
         copy) *)
      let rewrite_entry_body body =
        List.mapi
          (fun i s ->
            if i >= p then Visit.map_stmt_exprs (redirect names) s else s)
          body
      in
      let splice body =
        let rec go i = function
          | rest when i = p -> prologue @ rest
          | [] -> prologue
          | s :: rest -> s :: go (i + 1) rest
        in
        go 0 body
      in
      let globals =
        List.concat_map
          (fun g ->
            match g with
            | Ast.Gvar d when List.mem d.Ast.d_name names ->
                (* the cache pointer lives right next to the pointer it
                   shadows *)
                let c =
                  List.find
                    (fun c ->
                      String.equal c.Opt.Opt_plan.mc_name d.Ast.d_name)
                    candidates
                in
                [ g;
                  Ast.Gvar
                    (Ast.decl (mpb_name d.Ast.d_name)
                       (Ctype.Ptr c.Opt.Opt_plan.mc_elt)) ]
            | Ast.Gfunc f when not (String.equal f.Ast.f_name entry) ->
                [ Ast.Gfunc (Visit.map_func_exprs (redirect names) f) ]
            | Ast.Gfunc f when String.equal f.Ast.f_name entry ->
                [ Ast.Gfunc
                    { f with
                      Ast.f_body = splice (rewrite_entry_body f.Ast.f_body) } ]
            | Ast.Gvar _ | Ast.Gfunc _ | Ast.Gproto _ -> [ g ])
          program.Ast.p_globals
      in
      List.iter
        (fun c ->
          Pass.note env
            "opt-mpb-cache: '%s' cached in MPB slice of core %d (%d bytes, \
             ~%d reads)"
            c.Opt.Opt_plan.mc_name c.Opt.Opt_plan.mc_owner
            c.Opt.Opt_plan.mc_bytes c.Opt.Opt_plan.mc_reads)
        candidates;
      List.iter
        (fun (name, why) ->
          Pass.note env "opt-mpb-cache: '%s' skipped: %s" name why)
        plan.Opt.Opt_plan.rejected;
      { program with Ast.p_globals = globals }
  | Some _, _, Some _ ->
      Pass.note env
        "opt-mpb-cache: entry has no core-id prologue, nothing cached";
      program

let pass =
  { Pass.name = "opt-mpb-cache"; transform; forbids_after = [];
    must_follow = [ "shared-rewrite"; "add-rcce" ] }
