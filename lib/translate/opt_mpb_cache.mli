open Cfront

(** MPB software caching: place hot read-only shared data (per the
    session's locality plan) into MPB slices with a collective
    allocation, a core-0 fill loop and a publishing barrier, then
    redirect parallel-phase reads to the on-die copy. *)

val mpb_suffix : string
(** ["__mpb"]; the cache pointer of [v] is named [v ^ mpb_suffix]. *)

val mpb_name : string -> string

val transform : Pass.ctx -> Ast.program -> Ast.program

val pass : Pass.t
(** Name ["opt-mpb-cache"]; must follow shared-rewrite and add-rcce. *)
