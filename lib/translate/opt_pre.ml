open Cfront

(* Partial redundancy elimination of shared loads.

   Every dereference of a shared-DRAM pointer is an uncached
   memory-controller round trip, so a loop that re-reads the same shared
   scalar each iteration pays the full off-chip latency every time.
   Within a sync-free region of a data-race-free program no other core's
   write can be ordered between two reads of the same location, so the
   load is stable and can be performed once, into a private temporary
   the compiler knows is cacheable:

     while (...) { ... *v ... }
   becomes
     { T __pre_v_0 = *v;  while (...) { ... __pre_v_0 ... } }

   Two legality routes admit a pointer [v] (a shared allocation from the
   locality plan that did not escape):

   - route A: the plan classified [v]'s data read-only after the entry
     prologue — every write precedes the insertion point, so the loop
     body cannot observe a concurrent write no matter what it calls;
   - route B: the source race report has no concurrent writer for [v]
     AND the loop body is sync-free (no barrier/lock/flag operation, not
     even transitively through a defined callee) AND the body calls no
     defined function at all — a callee could store through an alias
     without synchronizing.

   Either way the loop body itself must not write through [v] and must
   not mention the bare pointer (passing it on could hide a write). *)

let temp_prefix = "__pre_"

let defined_functions program =
  List.filter_map
    (function Ast.Gfunc f -> Some f.Ast.f_name | _ -> None)
    program.Ast.p_globals

(* does the statement call any defined (program) function? *)
let calls_defined defined s =
  let found = ref false in
  Visit.iter_exprs_of_stmt
    (fun e ->
      match e with
      | Ast.Call (f, _) when List.mem f defined -> found := true
      | _ -> ())
    s;
  !found

(* occurrence scan for one pointer: reads of [*v], writes through [v]
   ([*v = ], [v[i] = ], increments), and bare mentions of [v] outside a
   dereference or index base *)
type occ = { mutable reads : bool; mutable writes : bool; mutable bare : bool }

let scan_stmt v s =
  let o = { reads = false; writes = false; bare = false } in
  let rec expr e =
    match e with
    | Ast.Unary (Ast.Deref, Ast.Var x) when String.equal x v -> o.reads <- true
    | Ast.Index (Ast.Var x, i) when String.equal x v ->
        (* a subscripted read is tame, but it is not the load we hoist *)
        expr i
    | Ast.Assign (_, lhs, rhs) ->
        (match lhs with
        | Ast.Unary (Ast.Deref, Ast.Var x) when String.equal x v ->
            o.writes <- true
        | Ast.Index (Ast.Var x, i) when String.equal x v ->
            o.writes <- true;
            expr i
        | lhs -> expr lhs);
        expr rhs
    | Ast.Unary ((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec), inner)
      -> (
        match inner with
        | Ast.Unary (Ast.Deref, Ast.Var x) when String.equal x v ->
            o.writes <- true
        | Ast.Index (Ast.Var x, i) when String.equal x v ->
            o.writes <- true;
            expr i
        | inner -> expr inner)
    | Ast.Var x when String.equal x v -> o.bare <- true
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Var _ | Ast.Sizeof_type _ ->
        ()
    | Ast.Unary (_, a) | Ast.Cast (_, a) | Ast.Sizeof_expr a -> expr a
    | Ast.Binary (_, a, b) | Ast.Comma (a, b) ->
        expr a;
        expr b
    | Ast.Cond (a, b, c) ->
        expr a;
        expr b;
        expr c
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Index (a, i) ->
        expr a;
        expr i
  in
  (* contextual walk from each statement's root expressions only —
     [iter_exprs_of_stmt] would revisit the [Var v] inside a dereference
     as its own node and misreport it as a bare mention *)
  Visit.iter_stmt (fun s -> List.iter expr (Visit.shallow_exprs s)) s;
  o

let is_loop s =
  match s.Ast.s_desc with
  | Ast.Sfor _ | Ast.Swhile _ | Ast.Sdo _ -> true
  | _ -> false

let transform env (program : Ast.program) =
  let session = Pass.session env in
  let plan = Session.opt_plan session in
  let regions = Session.sync_regions session in
  let racy =
    Analysis.Race.racy_variables (Pass.source_races env)
    |> List.filter Ir.Var_id.is_global
    |> List.map (fun (v : Ir.Var_id.t) -> v.Ir.Var_id.name)
  in
  let defined = defined_functions program in
  let eligible =
    List.filter
      (fun (a : Opt.Opt_plan.shared_alloc) ->
        not (List.mem a.Opt.Opt_plan.sa_name plan.Opt.Opt_plan.escaped))
      plan.Opt.Opt_plan.allocs
  in
  let route_a (a : Opt.Opt_plan.shared_alloc) =
    List.mem a.Opt.Opt_plan.sa_name plan.Opt.Opt_plan.read_only
  in
  let fresh = ref 0 in
  let hoisted = ref 0 in
  let hoist_in_func (fn : Ast.func) =
    let rewrite s =
      if not (is_loop s) then None
      else begin
        let syncfree = not (Opt.Sync_regions.stmt_has_sync regions s) in
        let callfree = not (calls_defined defined s) in
        let vars =
          List.filter
            (fun (a : Opt.Opt_plan.shared_alloc) ->
              let v = a.Opt.Opt_plan.sa_name in
              let o = scan_stmt v s in
              o.reads && (not o.writes) && (not o.bare)
              && (route_a a
                 || (syncfree && callfree && not (List.mem v racy))))
            eligible
        in
        if vars = [] then None
        else begin
          let bindings =
            List.map
              (fun (a : Opt.Opt_plan.shared_alloc) ->
                let v = a.Opt.Opt_plan.sa_name in
                let tmp = Printf.sprintf "%s%s_%d" temp_prefix v !fresh in
                incr fresh;
                (v, tmp, a.Opt.Opt_plan.sa_elt))
              vars
          in
          let subst e =
            match e with
            | Ast.Unary (Ast.Deref, Ast.Var x) -> (
                match
                  List.find_opt (fun (v, _, _) -> String.equal v x) bindings
                with
                | Some (_, tmp, _) -> Ast.var tmp
                | None -> e)
            | e -> e
          in
          let decls =
            List.map
              (fun (v, tmp, elt) ->
                Ast.stmt
                  (Ast.Sdecl
                     [ Ast.decl
                         ~init:
                           (Ast.Init_expr (Ast.Unary (Ast.Deref, Ast.var v)))
                         tmp elt ]))
              bindings
          in
          List.iter
            (fun (v, tmp, _) ->
              incr hoisted;
              Pass.note env
                "opt-pre: hoisted shared load of *%s out of a loop in %s \
                 (temp %s)"
                v fn.Ast.f_name tmp)
            bindings;
          Some [ Ast.stmt (Ast.Sblock (decls @ [ Visit.map_stmt_exprs subst s ])) ]
        end
      end
    in
    { fn with Ast.f_body = Visit.rewrite_stmts_topdown rewrite fn.Ast.f_body }
  in
  let globals =
    List.map
      (function
        | Ast.Gfunc f -> Ast.Gfunc (hoist_in_func f)
        | g -> g)
      program.Ast.p_globals
  in
  if !hoisted = 0 then Pass.note env "opt-pre: no hoistable shared loads";
  { program with Ast.p_globals = globals }

let pass =
  { Pass.name = "opt-pre"; transform; forbids_after = [];
    must_follow = [ "shared-rewrite"; "add-rcce"; "opt-mpb-cache" ] }
