open Cfront

(** Partial redundancy elimination of shared loads: hoist loop-stable
    dereferences of non-escaping shared pointers into private (hence
    cacheable) temporaries, legal via the plan's read-only-after-prologue
    classification or via no-concurrent-writer race facts plus loop
    sync-freedom. *)

val temp_prefix : string
(** ["__pre_"]; hoisted temporaries are named [__pre_<var>_<k>]. *)

val transform : Pass.ctx -> Ast.program -> Ast.program

val pass : Pass.t
(** Name ["opt-pre"]; must follow shared-rewrite, add-rcce and
    opt-mpb-cache (the cache pass rewrites subscripted reads, this one
    plain dereferences — running PRE second keeps the two disjoint). *)
