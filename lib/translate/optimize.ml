open Cfront

(* Stage 5 code optimizations (the paper's section 7.3 future work):
   constant folding over every expression, dead-branch elimination for
   conditions that folded to constants, and removal of unreachable
   statements after a return/break/continue.  Off by default — the
   paper-faithful pipeline leaves the program shape untouched. *)

let rec truncate_after_jump = function
  | [] -> []
  | ({ Ast.s_desc = Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue; _ } as s)
    :: _ -> [ s ]
  | s :: rest -> s :: truncate_after_jump rest

let transform env (program : Ast.program) =
  let folded = Constfold.program program in
  let removed_branches = ref 0 in
  let program =
    Visit.rewrite_program
      (fun s ->
        match s.Ast.s_desc with
        | Ast.Sif (c, then_branch, else_branch) -> begin
            match Constfold.const_truth c with
            | Some true ->
                incr removed_branches;
                Some [ then_branch ]
            | Some false ->
                incr removed_branches;
                Some (match else_branch with Some e -> [ e ] | None -> [])
            | None -> None
          end
        | Ast.Swhile (c, _) when Constfold.const_truth c = Some false ->
            incr removed_branches;
            Some []
        | Ast.Sfor (init, Some c, _, _)
          when Constfold.const_truth c = Some false -> begin
            incr removed_branches;
            match init with
            | Ast.For_none -> Some []
            | Ast.For_expr e ->
                Some [ Ast.stmt ~loc:s.Ast.s_loc (Ast.Sexpr e) ]
            | Ast.For_decl ds ->
                Some [ Ast.stmt ~loc:s.Ast.s_loc (Ast.Sdecl ds) ]
          end
        | Ast.Sdo (body, c) when Constfold.const_truth c = Some false ->
            (* the body runs exactly once *)
            incr removed_branches;
            Some [ body ]
        | Ast.Sblock stmts ->
            let trimmed = truncate_after_jump stmts in
            if List.length trimmed <> List.length stmts then
              Some [ { s with Ast.s_desc = Ast.Sblock trimmed } ]
            else None
        | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Swhile _ | Ast.Sdo _ | Ast.Sfor _
        | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> None)
      folded
  in
  (* unreachable trailing statements of function bodies *)
  let program =
    {
      program with
      Ast.p_globals =
        List.map
          (fun g ->
            match g with
            | Ast.Gfunc fn ->
                Ast.Gfunc
                  { fn with Ast.f_body = truncate_after_jump fn.Ast.f_body }
            | Ast.Gvar _ | Ast.Gproto _ -> g)
          program.Ast.p_globals;
    }
  in
  if !removed_branches > 0 then
    Pass.note env "optimize: removed %d constant branches" !removed_branches;
  program

(* constant folding runs after the locality passes: folded-away branches
   can only shrink what the earlier rewrites produced, never reorder a
   hoisted load back across a barrier *)
let pass =
  { Pass.name = "optimize"; transform; forbids_after = [];
    must_follow = [ "opt-mpb-cache"; "opt-pre" ] }
