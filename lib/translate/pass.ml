open Cfront

(* Pass manager in the style of the Cetus framework the paper builds on:
   each component is an analysis or transform pass, and a driver runs
   them in series.  Passes are session-aware: they request the Stage 1-4
   facts from the compilation session's registry (pinned to the source
   program's generation) instead of receiving a pre-baked environment,
   and every transform publishes its result as a new program generation.
   After each transform the IR is checked structurally, in memory —
   scope-closed identifiers, a rebuildable symbol table, and no orphaned
   nodes of a family an earlier pass removed. *)

(* The translation options live with the session (the fact providers
   need them); re-exported here so pass code and callers keep the
   familiar [Pass.options] spelling. *)
type options = Session.options = {
  ncores : int;
  capacity : int;
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
  include_possible : bool;
  many_to_one : bool;
  optimize : bool;
  opt_pre : bool;
  opt_mpb_cache : bool;
  sharpen : bool;
}

let default_options = Session.default_options

type ctx = {
  session : Session.t;
  base_analysis : Analysis.Pipeline.t;
      (* Stage 1-3 facts of the source program, pinned: transforms
         consume the analysis of what the user wrote, not of the
         half-rewritten intermediate generations *)
  base_partition : Partition.Partitioner.result;
  base_races : Analysis.Race.t;
      (* static race report of the source program, pinned: the PRE
         pass's no-concurrent-writer legality must speak about the
         program the user wrote (on the RCCE generation every unguarded
         core-0 init store would look racy) *)
  mutable notes : string list;   (* pass-emitted remarks, reverse order *)
}

let ctx_of_session session =
  {
    session;
    base_analysis = Session.pipeline session;
    base_partition = Session.partition session;
    base_races = Session.races session;
    notes = [];
  }

let session ctx = ctx.session
let options ctx = Session.options ctx.session
let analysis ctx = ctx.base_analysis
let partition ctx = ctx.base_partition
let source_races ctx = ctx.base_races

let note ctx fmt =
  Printf.ksprintf (fun msg -> ctx.notes <- msg :: ctx.notes) fmt

let notes ctx = List.rev ctx.notes

type t = {
  name : string;
  transform : ctx -> Ast.program -> Ast.program;
  forbids_after : string list;
      (* identifier/type/call/include prefixes this pass removes; they
         must never reappear in any later generation *)
  must_follow : string list;
      (* passes this one depends on: when both are scheduled, every
         named pass must come earlier.  A pass named here but absent
         from the schedule (e.g. dropped by a sabotage run) imposes
         nothing. *)
}

exception Inconsistent of string * string
(** [Inconsistent (pass, diagnostic)]: a transform produced a program
    that is no longer structurally well-formed. *)

(* The structural IR validator: a Wellformed visitor plus a symbol-table
   rebuild, both in memory — this replaces the old print-then-reparse
   consistency hack. *)
let check_structure ?(forbid = []) pass_name program =
  (match Wellformed.check ~forbid program with
  | Ok () -> ()
  | Error e ->
      raise (Inconsistent (pass_name, Wellformed.error_to_string e)));
  match Ir.Symtab.build program with
  | (_ : Ir.Symtab.t) -> ()
  | exception Srcloc.Error (loc, msg) ->
      raise
        (Inconsistent
           (pass_name, Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg))

(* Ordering constraints are checked before anything runs: a schedule
   where a pass precedes one of its [must_follow] dependencies is a
   driver bug, reported as Inconsistent without touching the program. *)
let validate_order passes =
  let scheduled = List.map (fun p -> p.name) passes in
  let (_ : string list) =
    List.fold_left
      (fun seen p ->
        List.iter
          (fun dep ->
            if List.mem dep scheduled && not (List.mem dep seen) then
              raise
                (Inconsistent
                   ( p.name,
                     Printf.sprintf
                       "scheduled before '%s', which it must follow" dep )))
          p.must_follow;
        p.name :: seen)
      [] passes
  in
  ()

let run_all ?(verify = true) passes ctx program =
  validate_order passes;
  let _, program =
    List.fold_left
      (fun (forbid, program) pass ->
        let program =
          Session.record_pass ctx.session ~name:pass.name (fun () ->
              pass.transform ctx program)
        in
        (* publish the new generation: cached facts invalidate, and any
           fact demanded below recomputes against this program *)
        Session.set_program ctx.session program;
        let forbid = pass.forbids_after @ forbid in
        if verify then begin
          Session.record_pass ctx.session ~name:"structural-check"
            (fun () ->
              match Wellformed.check ~forbid program with
              | Ok () -> ()
              | Error e ->
                  raise
                    (Inconsistent (pass.name, Wellformed.error_to_string e)));
          (* the symbol table is a session fact of the new generation:
             rebuilding it proves declarations are still consistent *)
          match Session.symtab ctx.session with
          | (_ : Ir.Symtab.t) -> ()
          | exception Srcloc.Error (loc, msg) ->
              raise
                (Inconsistent
                   ( pass.name,
                     Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg ))
        end;
        (forbid, program))
      ([], program) passes
  in
  program
