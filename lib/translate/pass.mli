open Cfront

(** Pass manager in the style of the Cetus framework: transform passes
    run in series against a compilation session, each publishing its
    result as a new program generation, with a structural (in-memory)
    IR well-formedness check after every transform. *)

type options = Session.options = {
  ncores : int;
  capacity : int;
      (** on-chip bytes available for shared data; 0 = all off-chip *)
  strategy : Partition.Partitioner.strategy;
  sound_locals : bool;
      (** hoist shared locals into shared memory (the thesis's example
          output leaves them on the process stack) *)
  include_possible : bool;
  many_to_one : bool;
      (** map several threads onto one core with a task loop instead of
          rejecting programs with more threads than cores (the paper's
          section 7.2 future work) *)
  optimize : bool;
      (** the full optimizer bundle: MPB software caching, PRE of shared
          loads, constant folding + dead-branch elimination *)
  opt_pre : bool;
      (** just the PRE/load-hoisting pass (also implied by [optimize]) *)
  opt_mpb_cache : bool;
      (** just the MPB software-cache pass (also implied by [optimize]) *)
  sharpen : bool;
      (** feed proven thread-locality facts from the abstract
          interpretation back into the sharing lattice before
          partitioning *)
}

val default_options : options
(** 48 cores, all-off-chip placement, paper-faithful behaviour. *)

type ctx
(** What a pass sees: the session (for options, notes and current-
    generation facts) plus the Stage 1–4 facts pinned to the source
    program — transforms consume the analysis of what the user wrote,
    not of half-rewritten intermediate generations. *)

val ctx_of_session : Session.t -> ctx
(** Demands the Stage 1–3 pipeline and the Stage-4 partition from the
    session (memoized there) and pins them for the pass run. *)

val session : ctx -> Session.t
val options : ctx -> options

val analysis : ctx -> Analysis.Pipeline.t
(** The pinned Stage 1–3 facts of the source program. *)

val partition : ctx -> Partition.Partitioner.result
(** The pinned Stage-4 partition of the source program. *)

val source_races : ctx -> Analysis.Race.t
(** The pinned static race report of the source program — the PRE
    pass's no-concurrent-writer interference facts. *)

val note : ctx -> ('a, unit, string, unit) format4 -> 'a
(** Record a remark about what a pass did. *)

val notes : ctx -> string list
(** Remarks in emission order. *)

type t = {
  name : string;
  transform : ctx -> Ast.program -> Ast.program;
  forbids_after : string list;
      (** name prefixes (identifiers, types, calls, includes) this pass
          removes; the structural checker rejects any later generation
          where one survives — e.g. ["pthread"] after the removal pass *)
  must_follow : string list;
      (** passes this one depends on: when both are scheduled, every
          named pass must come earlier; names absent from the schedule
          impose nothing (so sabotage drop-pass runs stay valid) *)
}

exception Inconsistent of string * string
(** [(pass, diagnostic)]: a transform produced a structurally ill-formed
    program. *)

val check_structure : ?forbid:string list -> string -> Ast.program -> unit
(** The structural validator on its own: {!Wellformed.check} plus a
    symbol-table rebuild, all in memory.
    @raise Inconsistent on the first violation. *)

val validate_order : t list -> unit
(** Check the [must_follow] constraints of a schedule.
    @raise Inconsistent when a pass precedes one of its dependencies. *)

val run_all : ?verify:bool -> t list -> ctx -> Ast.program -> Ast.program
(** Run passes in order ({!validate_order} is checked first).  Each
    transform is timed into the session's instrumentation table and
    publishes a new program generation; [verify] (default true) runs the
    structural checker after each, with the accumulated [forbids_after]
    prefixes enforced. *)
