open Cfront

(* Stage 5 cleanup, the paper's Algorithms 5-8:
   - Algorithm 6: [pthread_self()] becomes [RCCE_ue()];
   - Algorithm 7: declarations whose specifier is a pthread data type are
     removed (hash-set lookup per declaration);
   - Algorithm 8: every remaining [pthread_*] API call statement is
     removed (hash-set lookup per call).
   Algorithm 5 (join removal) lives in {!Thread_to_process}, which must
   run first because joins carry barrier semantics. *)

let pthread_types =
  [ "pthread_t"; "pthread_attr_t"; "pthread_mutex_t"; "pthread_mutexattr_t";
    "pthread_cond_t"; "pthread_condattr_t"; "pthread_barrier_t";
    "pthread_barrierattr_t" ]

let pthread_calls =
  [ "pthread_create"; "pthread_join"; "pthread_exit"; "pthread_detach";
    "pthread_cancel"; "pthread_attr_init"; "pthread_attr_destroy";
    "pthread_mutex_init"; "pthread_mutex_destroy"; "pthread_mutex_lock";
    "pthread_mutex_unlock"; "pthread_mutex_trylock"; "pthread_cond_init";
    "pthread_cond_destroy"; "pthread_cond_wait"; "pthread_cond_signal";
    "pthread_cond_broadcast"; "pthread_barrier_init";
    "pthread_barrier_destroy"; "pthread_barrier_wait" ]

let type_table = Hashtbl.create 16
let call_table = Hashtbl.create 32

let () =
  List.iter (fun t -> Hashtbl.replace type_table t ()) pthread_types;
  List.iter (fun c -> Hashtbl.replace call_table c ()) pthread_calls

let rec base_type_name = function
  | Ctype.Named n -> Some n
  | Ctype.Ptr t | Ctype.Array (t, _) | Ctype.Unsigned t -> base_type_name t
  | Ctype.Void | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long
  | Ctype.Float | Ctype.Double | Ctype.Func _ -> None

let is_pthread_decl (d : Ast.decl) =
  match base_type_name d.Ast.d_type with
  | Some n -> Hashtbl.mem type_table n
  | None -> false

let is_pthread_call_stmt (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sexpr e ->
      Visit.fold_expr
        (fun acc e ->
          acc
          || match e with
             | Ast.Call (n, _) -> Hashtbl.mem call_table n
             | _ -> false)
        false e
  | Ast.Sdecl _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
  | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull ->
      false

let transform env (program : Ast.program) =
  (* Algorithm 6: pthread_self -> RCCE_ue *)
  let program =
    Visit.map_program_exprs
      (fun e ->
        match e with
        | Ast.Call ("pthread_self", []) -> Ast.call "RCCE_ue" []
        | _ -> e)
      program
  in
  let removed_decls = ref 0 and removed_calls = ref 0 in
  (* Algorithms 7 and 8 over function bodies *)
  let program =
    Visit.rewrite_program
      (fun s ->
        match s.Ast.s_desc with
        | Ast.Sdecl ds ->
            let kept = List.filter (fun d -> not (is_pthread_decl d)) ds in
            if List.length kept = List.length ds then None
            else begin
              removed_decls := !removed_decls + List.length ds - List.length kept;
              if kept = [] then Some []
              else Some [ { s with Ast.s_desc = Ast.Sdecl kept } ]
            end
        | _ when is_pthread_call_stmt s ->
            incr removed_calls;
            Some []
        | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _
        | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
        | Ast.Snull -> None)
      program
  in
  (* Algorithm 7 also applies to globals (a global pthread_mutex_t) *)
  let globals =
    List.filter
      (fun g ->
        match g with
        | Ast.Gvar d when is_pthread_decl d ->
            incr removed_decls;
            false
        | Ast.Gvar _ | Ast.Gfunc _ | Ast.Gproto _ -> true)
      program.Ast.p_globals
  in
  if !removed_decls > 0 || !removed_calls > 0 then
    Pass.note env "remove-pthread: dropped %d declarations, %d call statements"
      !removed_decls !removed_calls;
  { program with Ast.p_globals = globals }

(* after this pass no pthread-named declaration, type, call or
   identifier may survive in any later generation; the structural
   checker enforces it *)
let pass =
  { Pass.name = "remove-pthread"; transform; forbids_after = [ "pthread" ];
    must_follow = [ "threads-to-processes"; "mutex-convert" ] }
