open Cfront

(* Stage 4 code generation: implicitly-shared variables become explicitly
   shared through the RCCE allocation API.

   For every variable whose final sharing status is Shared:
   - an array  T v[n]  becomes a global  T *v;  allocated with
     ALLOC(sizeof(T) * n);
   - a pointer T *v    keeps its declaration and gets ALLOC(sizeof(T) * 1)
     backing (the thesis's Example 4.2 shape);
   - a scalar  T v     becomes  T *v;  with ALLOC(sizeof(T) * 1), and every
     use of v is rewritten to  *v  — except where a local shadows it;
   where ALLOC is RCCE_shmalloc for off-chip placement and RCCE_malloc for
   on-chip (MPB) placement, as decided by the Stage 4 partitioner.
   Allocation statements are inserted at the top of main; pre-existing
   malloc calls for the same variable are removed (Algorithm 3, lines
   8-10).  Non-trivial lost initializers are re-emitted as stores executed
   by core 0 only.

   Shared *locals* are left alone by default, matching the paper's own
   example output; with [sound_locals] scalar ones are hoisted into shared
   globals as well (see DESIGN.md). *)

type plan_entry = {
  name : string;
  elt_ty : Ctype.t;             (* element (pointee) type *)
  count : int;                  (* number of elements to allocate *)
  scalar : bool;                (* uses must be rewritten to  *v  *)
  alloc_fn : string;            (* RCCE_shmalloc or RCCE_malloc *)
  init_stores : Ast.stmt list;  (* re-emitted initializer, if any *)
}

let alloc_fn_of_placement = function
  | Partition.Partitioner.On_chip -> "RCCE_malloc"
  | Partition.Partitioner.Off_chip -> "RCCE_shmalloc"
  | Partition.Partitioner.Split _ ->
      (* source-level splitting of one C array is not expressible without
         changing its indexing; the translator places split arrays off
         chip (the workloads' staged MPB processing covers the split use
         case at run time) *)
      "RCCE_shmalloc"

let placement_for env id =
  match Partition.Partitioner.placement_of (Pass.partition env) id with
  | Some p -> p
  | None -> Partition.Partitioner.Off_chip

(* "v = (T *) ALLOC(sizeof(T) * n);" *)
let alloc_stmt entry =
  let size =
    Ast.Binary (Ast.Mul, Ast.Sizeof_type entry.elt_ty, Ast.int entry.count)
  in
  let call = Ast.call entry.alloc_fn [ size ] in
  let cast = Ast.Cast (Ctype.Ptr entry.elt_ty, call) in
  Ast.stmt (Ast.Sexpr (Ast.assign (Ast.var entry.name) cast))

let is_zero_expr = function
  | Ast.Int_lit 0 -> true
  | Ast.Float_lit f -> f = 0.0
  | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Char_lit _ | Ast.Var _
  | Ast.Unary _ | Ast.Binary _ | Ast.Assign _ | Ast.Cond _ | Ast.Call _
  | Ast.Index _ | Ast.Cast _ | Ast.Sizeof_type _ | Ast.Sizeof_expr _
  | Ast.Comma _ -> false

(* Stores reconstructing a dropped initializer, executed by core 0 only:
   every process runs main, but shared memory must be written once. *)
let guarded_by_core0 = function
  | [] -> []
  | stmts ->
      let guard =
        Ast.Binary (Ast.Eq, Ast.var Thread_to_process.core_id_var, Ast.int 0)
      in
      [ Ast.stmt (Ast.Sif (guard, Ast.stmt (Ast.Sblock stmts), None)) ]

let init_stores_of ~name ~scalar (init : Ast.init option) =
  match init with
  | None -> []
  | Some (Ast.Init_expr e) when is_zero_expr e -> []
  | Some (Ast.Init_expr e) ->
      let lhs =
        if scalar then Ast.Unary (Ast.Deref, Ast.var name) else Ast.var name
      in
      guarded_by_core0 [ Ast.stmt (Ast.Sexpr (Ast.assign lhs e)) ]
  | Some (Ast.Init_list es) when List.for_all is_zero_expr es -> []
  | Some (Ast.Init_list es) ->
      let store i e =
        Ast.stmt (Ast.Sexpr (Ast.assign (Ast.Index (Ast.var name, Ast.int i)) e))
      in
      guarded_by_core0 (List.mapi store es)

let plan_of_global env (d : Ast.decl) =
  let id = Ir.Var_id.global d.Ast.d_name in
  if not (Analysis.Pipeline.is_shared (Pass.analysis env) id) then None
  else
    let alloc_fn = alloc_fn_of_placement (placement_for env id) in
    match d.Ast.d_type with
    | Ctype.Array (elt, len) ->
        let count = match len with Some n -> n | None -> 1 in
        Some
          { name = d.Ast.d_name; elt_ty = elt; count; scalar = false;
            alloc_fn;
            init_stores =
              init_stores_of ~name:d.Ast.d_name ~scalar:false d.Ast.d_init }
    | Ctype.Ptr pointee ->
        Some
          { name = d.Ast.d_name; elt_ty = pointee; count = 1; scalar = false;
            alloc_fn; init_stores = [] }
    | Ctype.Void | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long
    | Ctype.Unsigned _ | Ctype.Float | Ctype.Double | Ctype.Named _ ->
        Some
          { name = d.Ast.d_name; elt_ty = d.Ast.d_type; count = 1;
            scalar = true; alloc_fn;
            init_stores =
              init_stores_of ~name:d.Ast.d_name ~scalar:true d.Ast.d_init }
    | Ctype.Func _ -> None

(* Uses of scalar-shared names become  *name ; [&*name] collapses back. *)
let deref_rewriter visible e =
  match e with
  | Ast.Var name when List.mem name visible ->
      Ast.Unary (Ast.Deref, Ast.var name)
  | Ast.Unary (Ast.Addr, Ast.Unary (Ast.Deref, inner)) -> inner
  | _ -> e

(* Rewrite uses of scalar-shared globals to  *v  inside one function,
   except names a local shadows there. *)
let rewrite_scalar_uses symtab names (fn : Ast.func) =
  let visible =
    List.filter
      (fun name ->
        match Ir.Symtab.resolve_id symtab ~func:fn.Ast.f_name name with
        | Some id -> Ir.Var_id.is_global id
        | None -> false)
      names
  in
  if visible = [] then fn
  else Visit.map_func_exprs (deref_rewriter visible) fn

(* Remove pre-existing [v = malloc(...)] statements for planned variables
   (Algorithm 3: "if previous malloc call B for s exists, remove B"). *)
let remove_prior_mallocs names program =
  let is_malloc = function
    | Ast.Call (("malloc" | "calloc"), _)
    | Ast.Cast (_, Ast.Call (("malloc" | "calloc"), _)) -> true
    | _ -> false
  in
  Visit.rewrite_program
    (fun s ->
      match s.Ast.s_desc with
      | Ast.Sexpr (Ast.Assign (None, Ast.Var v, rhs))
        when List.mem v names && is_malloc rhs -> Some []
      | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _
      | Ast.Sdo _ | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
      | Ast.Snull -> None)
    program

let map_main f (program : Ast.program) =
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn when String.equal fn.Ast.f_name "main" ->
            Ast.Gfunc { fn with Ast.f_body = f fn.Ast.f_body }
        | Ast.Gfunc _ | Ast.Gvar _ | Ast.Gproto _ -> g)
      program.Ast.p_globals
  in
  { program with Ast.p_globals = globals }

let prepend_to_main stmts program = map_main (fun body -> stmts @ body) program

(* Re-emitted initializer stores read [myID], so they must land after
   the [int myID; myID = RCCE_ue();] prologue thread-to-process put at
   the top of main — at the very top they would use the variable before
   its declaration.  (The allocations themselves read no locals and stay
   above the prologue, in the paper's Example 4.2 order.) *)
let core_id_prologue (s : Ast.stmt) =
  match s.Ast.s_desc with
  | Ast.Sdecl ds ->
      List.exists
        (fun d ->
          String.equal d.Ast.d_name Thread_to_process.core_id_var
          || String.equal d.Ast.d_name Thread_to_process.task_var)
        ds
  | Ast.Sexpr (Ast.Assign (_, Ast.Var v, _)) ->
      String.equal v Thread_to_process.core_id_var
  | _ -> false

let insert_after_prologue stmts program =
  if stmts = [] then program
  else
    let rec place = function
      | s :: rest when core_id_prologue s -> s :: place rest
      | body -> stmts @ body
    in
    map_main place program

(* --- shared locals (sound_locals option) -------------------------------- *)

(* Hoist a scalar shared local into a shared global pointer: the
   declaration becomes a store through the pointer, uses become  *v . *)
let hoist_one_local env program (info : Analysis.Varinfo.t) =
  let id = info.Analysis.Varinfo.id in
  let name = id.Ir.Var_id.name in
  let elt_ty = info.Analysis.Varinfo.ty in
  match elt_ty with
  | Ctype.Array _ | Ctype.Ptr _ | Ctype.Func _ ->
      Pass.note env
        "shared-rewrite: shared local '%s' left in place (non-scalar \
         hoisting unsupported)" name;
      program
  | Ctype.Void | Ctype.Char | Ctype.Short | Ctype.Int | Ctype.Long
  | Ctype.Unsigned _ | Ctype.Float | Ctype.Double | Ctype.Named _ ->
      Pass.note env "shared-rewrite: hoisted shared local '%s'" name;
      let alloc_fn = alloc_fn_of_placement (placement_for env id) in
      let entry =
        { name; elt_ty; count = 1; scalar = true; alloc_fn; init_stores = [] }
      in
      (* uses become  *name  first (the name is becoming a global
         pointer); the synthesized store below must not be rewritten
         again *)
      let program =
        Visit.map_program_exprs (deref_rewriter [ name ]) program
      in
      (* then the declaration becomes a store through the pointer *)
      let program =
        Visit.rewrite_program
          (fun s ->
            match s.Ast.s_desc with
            | Ast.Sdecl ds
              when List.exists
                     (fun (d : Ast.decl) -> String.equal d.Ast.d_name name)
                     ds ->
                let lower (d : Ast.decl) =
                  if String.equal d.Ast.d_name name then
                    match d.Ast.d_init with
                    | Some (Ast.Init_expr e) ->
                        [ Ast.stmt ~loc:s.Ast.s_loc
                            (Ast.Sexpr
                               (Ast.assign
                                  (Ast.Unary (Ast.Deref, Ast.var name)) e)) ]
                    | Some (Ast.Init_list _) | None -> []
                  else [ { s with Ast.s_desc = Ast.Sdecl [ d ] } ]
                in
                Some (List.concat_map lower ds)
            | Ast.Sdecl _ | Ast.Sexpr _ | Ast.Sblock _ | Ast.Sif _
            | Ast.Swhile _ | Ast.Sdo _ | Ast.Sfor _ | Ast.Sreturn _
            | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> None)
          program
      in
      let gdecl = Ast.Gvar (Ast.decl name (Ctype.Ptr elt_ty)) in
      let program =
        { program with Ast.p_globals = gdecl :: program.Ast.p_globals }
      in
      prepend_to_main [ alloc_stmt entry ] program

let hoist_shared_locals env program =
  let shared_locals =
    List.filter
      (fun (info : Analysis.Varinfo.t) ->
        match info.Analysis.Varinfo.id.Ir.Var_id.scope with
        | Ir.Var_id.Local _ -> true
        | Ir.Var_id.Global | Ir.Var_id.Param _ -> false)
      (Analysis.Pipeline.shared_variables (Pass.analysis env))
  in
  List.fold_left (hoist_one_local env) program shared_locals

(* --- the pass ----------------------------------------------------------- *)

let transform env (program : Ast.program) =
  let symtab = Ir.Symtab.build program in
  let plans =
    List.filter_map
      (fun g ->
        match g with
        | Ast.Gvar d -> plan_of_global env d
        | Ast.Gfunc _ | Ast.Gproto _ -> None)
      program.Ast.p_globals
  in
  let names = List.map (fun p -> p.name) plans in
  let scalar_names =
    List.filter_map (fun p -> if p.scalar then Some p.name else None) plans
  in
  (* shared globals that were arrays or scalars become pointers *)
  let retype (d : Ast.decl) =
    match List.find_opt (fun p -> String.equal p.name d.Ast.d_name) plans with
    | None -> d
    | Some p -> { d with Ast.d_type = Ctype.Ptr p.elt_ty; d_init = None }
  in
  let globals =
    List.map
      (fun g ->
        match g with
        | Ast.Gvar d -> Ast.Gvar (retype d)
        | Ast.Gfunc fn ->
            Ast.Gfunc (rewrite_scalar_uses symtab scalar_names fn)
        | Ast.Gproto _ -> g)
      program.Ast.p_globals
  in
  let program = { program with Ast.p_globals = globals } in
  let program = remove_prior_mallocs names program in
  let allocs = List.map alloc_stmt plans in
  let inits = List.concat_map (fun p -> p.init_stores) plans in
  List.iter
    (fun p ->
      Pass.note env "shared-rewrite: '%s' -> %s(%d x %s)" p.name p.alloc_fn
        p.count (Ctype.to_string p.elt_ty))
    plans;
  (* inits first, while the prologue is still at the head of main *)
  let program = insert_after_prologue inits program in
  let program = prepend_to_main allocs program in
  if (Pass.options env).Pass.sound_locals then hoist_shared_locals env program
  else program

let pass =
  { Pass.name = "shared-rewrite"; transform; forbids_after = [];
    must_follow = [ "threads-to-processes" ] }
