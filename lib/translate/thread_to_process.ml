open Cfront

(* Stage 5, Algorithm 4: convert thread launches into per-process calls.

   - A [pthread_create] inside a counted loop means the cores of that
     loop's thread range run the thread function: the loop is dismantled,
     the create statement becomes a direct call whose argument has the
     loop counter replaced by the caller's thread index, and any other
     statements of the body are kept once (same substitution).
   - Every create site consumes a contiguous range of thread IDs, in
     order of appearance: a counted loop of n creates takes the next n,
     a standalone create takes the next one.  A loop whose range is not
     the full chip ([base > 0] or [n < ncores]) is guarded with
     [if (myID >= base && myID < base + n)] and indexed by
     [myID - base]; the canonical whole-chip loop stays an unguarded
     direct call, exactly the paper's Algorithm 4 output.  Without the
     guard an extra core would run a phantom thread instance whose
     out-of-range index reads and writes past the site's shared arrays
     (found by the conformance fuzzer: two create loops, or one loop
     narrower than the chip, corrupted the neighbouring allocation).
   - A standalone [pthread_create] is a thread-specific task: it becomes
     a direct call wrapped in [if (myID == k)], where k is the site's
     thread ID — the paper's hash-table of function name to core ID
     (folded onto the chip with [mod ncores] under many-to-one).
   - A [pthread_join] inside a loop dismantles the loop into one
     [RCCE_barrier] followed by the rest of the body (counter -> core ID);
     a standalone join becomes a barrier.
   - [int myID; myID = RCCE_ue();] is inserted at the top of main.

   Programs creating more threads than the target has cores are rejected,
   mirroring the paper's section 7.2. *)

let core_id_var = "myID"

(* With [many_to_one] (the paper's section 7.2 future work), a process
   handles several threads: the dismantled create/join loops become task
   loops [for (myTask = myID; myTask < NT; myTask += RCCE_num_ues())]. *)
let task_var = "myTask"

exception Too_many_threads of int * int  (* threads, cores *)

let barrier_stmt loc =
  Ast.stmt ~loc
    (Ast.Sexpr
       (Ast.call "RCCE_barrier" [ Ast.Unary (Ast.Addr, Ast.var "RCCE_COMM_WORLD") ]))

(* Substitute every use of variable [from] with the expression [to_]
   (the caller's thread index: [myID], [myTask], or [myID - base]). *)
let subst_var ~from ~to_ e =
  Visit.map_expr
    (fun e ->
      match e with
      | Ast.Var name when String.equal name from -> to_
      | _ -> e)
    e

(* Substitute in every expression of a statement tree. *)
let subst_stmt ~from ~to_ (s : Ast.stmt) =
  Visit.map_stmt_exprs
    (fun e ->
      match e with
      | Ast.Var name when String.equal name from -> to_
      | _ -> e)
    s

let stmt_contains_call name (s : Ast.stmt) =
  let found = ref false in
  Visit.iter_stmt
    (fun s ->
      List.iter
        (Visit.iter_expr (fun e ->
             match e with
             | Ast.Call (n, _) when String.equal n name -> found := true
             | _ -> ()))
        (Visit.shallow_exprs s))
    s;
  !found

(* The direct call replacing one pthread_create: [tf(arg)] with the loop
   counter (if any) replaced by the caller's thread index ([myID],
   [myID - base], or [myTask] inside a many-to-one task loop).  A create
   whose thread argument was NULL calls with NULL, preserving the
   signature. *)
let direct_call ~counter ~index loc args =
  match args with
  | [ _tid; _attr; farg; targ ] -> begin
      match Analysis.Thread_analysis.func_name_of_arg farg with
      | Some fname ->
          let arg =
            match counter with
            | Some c -> subst_var ~from:c ~to_:index targ
            | None -> targ
          in
          Some (Ast.stmt ~loc (Ast.Sexpr (Ast.call fname [ arg ])))
      | None -> None
    end
  | _ -> None

(* Rewrite the statements of a dismantled create/join loop body,
   substituting the loop counter with [index]. *)
let rec lower_body ~env ~counter ~index stmts =
  List.concat_map (lower_body_stmt ~env ~counter ~index) stmts

and lower_body_stmt ~env ~counter ~index (s : Ast.stmt) =
  let subst s =
    match counter with
    | Some c -> subst_stmt ~from:c ~to_:index s
    | None -> s
  in
  match s.Ast.s_desc with
  | Ast.Sexpr e -> begin
      match find_create_call e with
      | Some args -> begin
          match direct_call ~counter ~index s.Ast.s_loc args with
          | Some call -> [ call ]
          | None -> [ subst s ]
        end
      | None ->
          if expr_contains_call "pthread_join" e then
            (* joins inside the dismantled loop collapse into the single
               barrier emitted by the caller *)
            []
          else [ subst s ]
    end
  | Ast.Sblock stmts ->
      [ Ast.stmt ~loc:s.Ast.s_loc
          (Ast.Sblock (lower_body ~env ~counter ~index stmts)) ]
  | Ast.Sdecl _ | Ast.Sif _ | Ast.Swhile _ | Ast.Sdo _ | Ast.Sfor _
  | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Snull -> [ subst s ]

and find_create_call e =
  let found = ref None in
  Visit.iter_expr
    (fun e ->
      match e with
      | Ast.Call ("pthread_create", args) when !found = None ->
          found := Some args
      | _ -> ())
    e;
  !found

and expr_contains_call name e =
  Visit.fold_expr
    (fun acc e ->
      acc
      || match e with Ast.Call (n, _) -> String.equal n name | _ -> false)
    false e

(* --- the pass ----------------------------------------------------------- *)

let check_core_count env =
  if not (Pass.options env).Pass.many_to_one then
    let threads =
      Analysis.Thread_analysis.static_thread_count
        (Pass.analysis env).Analysis.Pipeline.threads
    in
    match threads with
    | Some n when n > (Pass.options env).Pass.ncores ->
        raise (Too_many_threads (n, (Pass.options env).Pass.ncores))
    | Some _ | None -> ()

(* [for (myTask = myID; myTask < nt; myTask += RCCE_num_ues()) body] *)
let task_loop ~loc ~nt body =
  let init =
    Ast.For_expr (Ast.assign (Ast.var task_var) (Ast.var core_id_var))
  in
  let cond = Ast.Binary (Ast.Lt, Ast.var task_var, Ast.int nt) in
  let step =
    Ast.Assign (Some Ast.Add, Ast.var task_var, Ast.call "RCCE_num_ues" [])
  in
  Ast.stmt ~loc
    (Ast.Sfor (init, Some cond, Some step, Ast.stmt ~loc (Ast.Sblock body)))

let transform env (program : Ast.program) =
  check_core_count env;
  let ncores = (Pass.options env).Pass.ncores in
  let many_to_one = (Pass.options env).Pass.many_to_one in
  (* first thread ID of the next create site, in order of appearance *)
  let base = ref 0 in
  let uses_task_loop = ref false in
  (* In many-to-one mode a counted create/join loop becomes a task loop;
     [bounds] is the (counter, trip) pair when statically known. *)
  let task_mode bounds =
    if (Pass.options env).Pass.many_to_one then
      match bounds with Some (_, nt) -> Some nt | None -> None
    else None
  in
  let rewrite (s : Ast.stmt) =
    match s.Ast.s_desc with
    | Ast.Sfor (_, _, _, _) when stmt_contains_call "pthread_create" s -> begin
        match s.Ast.s_desc with
        | Ast.Sfor (_, _, _, body) ->
            let bounds = Analysis.Thread_analysis.loop_bounds s in
            let counter = Option.map fst bounds in
            let stmts =
              match body.Ast.s_desc with
              | Ast.Sblock stmts -> stmts
              | _ -> [ body ]
            in
            (match task_mode bounds with
            | Some nt ->
                uses_task_loop := true;
                base := !base + nt;
                Pass.note env
                  "threads-to-processes: create loop at %s became a                    many-to-one task loop over %d threads"
                  (Srcloc.to_string s.Ast.s_loc) nt;
                let lowered =
                  lower_body ~env ~counter ~index:(Ast.var task_var) stmts
                in
                Some [ task_loop ~loc:s.Ast.s_loc ~nt lowered ]
            | None ->
                let base0 = !base in
                let index =
                  if base0 = 0 then Ast.var core_id_var
                  else
                    Ast.Binary
                      (Ast.Sub, Ast.var core_id_var, Ast.int base0)
                in
                let lowered = lower_body ~env ~counter ~index stmts in
                (match bounds with
                | Some (_, n) when base0 = 0 && n >= ncores ->
                    (* the canonical whole-chip loop: every core runs a
                       thread instance, no guard needed *)
                    base := base0 + n;
                    Pass.note env
                      "threads-to-processes: dismantled create loop at %s"
                      (Srcloc.to_string s.Ast.s_loc);
                    Some lowered
                | Some (_, n) ->
                    base := base0 + n;
                    let upper =
                      Ast.Binary
                        (Ast.Lt, Ast.var core_id_var, Ast.int (base0 + n))
                    in
                    let guard =
                      if base0 = 0 then upper
                      else
                        Ast.Binary
                          ( Ast.Land,
                            Ast.Binary
                              (Ast.Ge, Ast.var core_id_var, Ast.int base0),
                            upper )
                    in
                    Pass.note env
                      "threads-to-processes: dismantled create loop at %s, \
                       guarded to thread range [%d, %d)"
                      (Srcloc.to_string s.Ast.s_loc) base0 (base0 + n);
                    Some
                      [ Ast.stmt ~loc:s.Ast.s_loc
                          (Ast.Sif
                             ( guard,
                               Ast.stmt ~loc:s.Ast.s_loc (Ast.Sblock lowered),
                               None )) ]
                | None ->
                    Pass.note env
                      "threads-to-processes: dismantled create loop at %s"
                      (Srcloc.to_string s.Ast.s_loc);
                    Some lowered))
        | _ -> None
      end
    | Ast.Sfor (_, _, _, _) when stmt_contains_call "pthread_join" s -> begin
        match s.Ast.s_desc with
        | Ast.Sfor (_, _, _, body) ->
            let bounds = Analysis.Thread_analysis.loop_bounds s in
            let counter = Option.map fst bounds in
            let stmts =
              match body.Ast.s_desc with
              | Ast.Sblock stmts -> stmts
              | _ -> [ body ]
            in
            (match task_mode bounds with
            | Some nt ->
                uses_task_loop := true;
                let rest =
                  lower_body ~env ~counter ~index:(Ast.var task_var) stmts
                in
                Pass.note env
                  "threads-to-processes: join loop at %s became a barrier                    and a task loop"
                  (Srcloc.to_string s.Ast.s_loc);
                let wrapped =
                  if rest = [] then []
                  else [ task_loop ~loc:s.Ast.s_loc ~nt rest ]
                in
                Some (barrier_stmt s.Ast.s_loc :: wrapped)
            | None ->
                let rest =
                  lower_body ~env ~counter ~index:(Ast.var core_id_var) stmts
                in
                Pass.note env
                  "threads-to-processes: join loop at %s became a barrier"
                  (Srcloc.to_string s.Ast.s_loc);
                Some (barrier_stmt s.Ast.s_loc :: rest))
        | _ -> None
      end
    | Ast.Sexpr e when expr_contains_call "pthread_create" e -> begin
        (* standalone create: a thread-specific task isolated on one core *)
        match find_create_call e with
        | Some args -> begin
            match
              direct_call ~counter:None ~index:(Ast.var core_id_var)
                s.Ast.s_loc args
            with
            | Some call ->
                let k = !base in
                base := k + 1;
                let core = if many_to_one then k mod ncores else k in
                let guard =
                  Ast.Binary (Ast.Eq, Ast.var core_id_var, Ast.int core)
                in
                Pass.note env
                  "threads-to-processes: standalone create pinned to core %d"
                  core;
                Some
                  [ Ast.stmt ~loc:s.Ast.s_loc (Ast.Sif (guard, call, None)) ]
            | None -> None
          end
        | None -> None
      end
    | Ast.Sexpr e when expr_contains_call "pthread_join" e ->
        Some [ barrier_stmt s.Ast.s_loc ]
    | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sblock _ | Ast.Sif _ | Ast.Swhile _
    | Ast.Sdo _ | Ast.Sfor _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue
    | Ast.Snull -> None
  in
  let program = Visit.rewrite_program_topdown rewrite program in
  (* insert the core-ID variable at the top of main *)
  let add_core_id (fn : Ast.func) =
    if String.equal fn.Ast.f_name "main" then
      let decl =
        Ast.stmt (Ast.Sdecl [ Ast.decl core_id_var Ctype.Int ])
      in
      let init =
        Ast.stmt
          (Ast.Sexpr (Ast.assign (Ast.var core_id_var)
                        (Ast.call "RCCE_ue" [])))
      in
      let task_decl =
        if !uses_task_loop then
          [ Ast.stmt (Ast.Sdecl [ Ast.decl task_var Ctype.Int ]) ]
        else []
      in
      { fn with Ast.f_body = (decl :: init :: task_decl) @ fn.Ast.f_body }
    else fn
  in
  {
    program with
    Ast.p_globals =
      List.map
        (fun g ->
          match g with
          | Ast.Gfunc fn -> Ast.Gfunc (add_core_id fn)
          | Ast.Gvar _ | Ast.Gproto _ -> g)
        program.Ast.p_globals;
  }

let pass =
  { Pass.name = "threads-to-processes"; transform; forbids_after = [];
    must_follow = [] }
