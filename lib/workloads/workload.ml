(* Workload harness: one benchmark definition runs in the paper's three
   configurations —
   - the Pthread baseline: N threads time-sliced on one core, data in
     that core's cacheable private DRAM;
   - RCCE with off-chip shared memory (Figure 6.1);
   - RCCE with on-chip (MPB) shared memory (Figure 6.2), falling back to
     off-chip when an array does not fit the participating slices — the
     paper's Algorithm 3 behaviour and its LU Decomposition observation. *)

type placement = Off_chip | On_chip

type mode =
  | Pthread_baseline of int   (* threads, all on core 0 *)
  | Rcce of placement * int   (* placement, cores *)

let mode_to_string = function
  | Pthread_baseline n -> Printf.sprintf "pthread(%d threads, 1 core)" n
  | Rcce (Off_chip, n) -> Printf.sprintf "rcce-offchip(%d cores)" n
  | Rcce (On_chip, n) -> Printf.sprintf "rcce-mpb(%d cores)" n

let units_of_mode = function
  | Pthread_baseline n | Rcce (_, n) -> n

type ctx = {
  eng : Scc.Engine.t;
  units : int;
  mode : mode;
  mutable notes : string list;
}

let note ctx fmt =
  Printf.ksprintf (fun msg -> ctx.notes <- msg :: ctx.notes) fmt

(* Allocate a benchmark array according to the mode's placement policy. *)
let alloc ctx ~name ~elts ~elt_bytes =
  let mm = Scc.Engine.memmap ctx.eng in
  let bytes = elts * elt_bytes in
  match ctx.mode with
  | Pthread_baseline _ ->
      let base = Scc.Memmap.alloc mm (Scc.Memmap.Private 0) ~bytes in
      Sharr.create ~name ~elts ~elt_bytes (Sharr.Contiguous base)
  | Rcce (Off_chip, _) ->
      let base = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes in
      Sharr.create ~name ~elts ~elt_bytes (Sharr.Contiguous base)
  | Rcce (On_chip, ncores) -> begin
      let cores = List.init ncores (fun i -> i) in
      match Scc.Memmap.alloc_mpb_striped mm ~cores ~bytes with
      | chunks ->
          let chunk_bytes =
            let per = (bytes + ncores - 1) / ncores in
            let line = (Scc.Engine.cfg ctx.eng).Scc.Config.line_bytes in
            (per + line - 1) / line * line
          in
          Sharr.create ~name ~elts ~elt_bytes
            (Sharr.Striped { chunks = Array.of_list chunks; chunk_bytes })
      | exception Scc.Memmap.Out_of_memory _ ->
          note ctx
            "array '%s' (%d bytes) exceeds the on-chip MPB; placed off-chip"
            name bytes;
          let base = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes in
          Sharr.create ~name ~elts ~elt_bytes (Sharr.Contiguous base)
    end

(* Per-unit MPB scratch buffers for benchmarks that stage blocks of a
   too-large shared array through the on-chip memory (the paper's "bulk
   copy" Stream observation and LU pivot-row remark).  Returns [None]
   when the mode has no MPB or a slice cannot hold [bytes]. *)
let mpb_scratch ctx ~bytes =
  match ctx.mode with
  | Pthread_baseline _ | Rcce (Off_chip, _) -> None
  | Rcce (On_chip, ncores) -> begin
      let mm = Scc.Engine.memmap ctx.eng in
      match
        List.init ncores (fun core ->
            Scc.Memmap.alloc mm (Scc.Memmap.Mpb core) ~bytes)
      with
      | addrs -> Some (Array.of_list addrs)
      | exception Scc.Memmap.Out_of_memory _ ->
          note ctx "MPB scratch of %d bytes per core does not fit" bytes;
          None
    end

type instance = {
  body : Scc.Engine.api -> unit;   (* per thread / UE *)
  verify : unit -> bool;           (* after the run *)
}

type t = {
  name : string;
  instantiate : ctx -> instance;
}

type result = {
  workload : string;
  mode : mode;
  elapsed_ps : int;
  verified : bool;
  stats : Scc.Stats.t;
  notes : string list;
}

let elapsed_ms r = float_of_int r.elapsed_ps /. 1e9

let run ?cfg ?trace ?profile ?critpath ?sim_jobs (w : t) mode =
  let eng = Scc.Engine.create ?cfg ?trace ?profile ?critpath ?sim_jobs () in
  let units = units_of_mode mode in
  if units < 1 then invalid_arg "Workload.run: no execution units";
  let ctx = { eng; units; mode; notes = [] } in
  let instance = w.instantiate ctx in
  (* when profiling, each unit runs under a root frame named after the
     workload, so engine charges are attributed rather than landing on
     <toplevel> *)
  let body =
    match profile with
    | None -> instance.body
    | Some p ->
        let slot = Scc.Profile.intern p w.name in
        fun (api : Scc.Engine.api) ->
          Scc.Profile.push p ~ctx:api.Scc.Engine.self slot;
          instance.body api;
          Scc.Profile.pop p ~ctx:api.Scc.Engine.self
  in
  (match mode with
  | Pthread_baseline n ->
      for _ = 1 to n do
        ignore (Scc.Engine.spawn eng ~core:0 body)
      done
  | Rcce (_, n) ->
      for core = 0 to n - 1 do
        ignore (Scc.Engine.spawn eng ~core body)
      done);
  Scc.Engine.run eng;
  {
    workload = w.name;
    mode;
    elapsed_ps = Scc.Engine.elapsed_ps eng;
    verified = instance.verify ();
    stats = Scc.Engine.stats eng;
    notes = List.rev ctx.notes;
  }

let speedup ~baseline r =
  float_of_int baseline.elapsed_ps /. float_of_int r.elapsed_ps
