(** Workload harness: one benchmark definition runs as the Pthread
    baseline (N threads on one core), as RCCE with off-chip shared memory
    (Figure 6.1), or as RCCE with on-chip MPB placement (Figure 6.2, with
    off-chip fallback for arrays that do not fit). *)

type placement = Off_chip | On_chip

type mode =
  | Pthread_baseline of int  (** threads, all on core 0 *)
  | Rcce of placement * int  (** placement, cores *)

val mode_to_string : mode -> string
val units_of_mode : mode -> int

type ctx = {
  eng : Scc.Engine.t;
  units : int;
  mode : mode;
  mutable notes : string list;
}

val note : ctx -> ('a, unit, string, unit) format4 -> 'a

val alloc : ctx -> name:string -> elts:int -> elt_bytes:int -> Sharr.t
(** Allocate a benchmark array under the mode's placement policy
    (private / off-chip shared / MPB-striped with off-chip fallback). *)

val mpb_scratch : ctx -> bytes:int -> int array option
(** Per-unit MPB scratch buffers (base address per core) for staging
    blocks of a too-large array through the on-chip memory; [None] when
    the mode has no MPB or a slice cannot hold [bytes]. *)

type instance = {
  body : Scc.Engine.api -> unit;  (** per thread / UE *)
  verify : unit -> bool;          (** checked after the run *)
}

type t = {
  name : string;
  instantiate : ctx -> instance;
}

type result = {
  workload : string;
  mode : mode;
  elapsed_ps : int;
  verified : bool;
  stats : Scc.Stats.t;
  notes : string list;
}

val elapsed_ms : result -> float

val run :
  ?cfg:Scc.Config.t -> ?trace:Scc.Trace.t -> ?profile:Scc.Profile.t ->
  ?critpath:Scc.Critpath.t -> ?sim_jobs:int -> t -> mode -> result
(** With [trace], the run records a timeline (see {!Scc.Trace}).  With
    [profile], every simulated picosecond is attributed to a root frame
    named after the workload, and contention/machine-metric timelines
    are collected (see {!Scc.Profile}).  [sim_jobs] partitions the
    scheduler (see {!Scc.Engine.create}); results are bit-identical for
    every value, but partition event counters become available in the
    profile and metrics. *)

val speedup : baseline:result -> result -> float
(** [baseline.elapsed / r.elapsed]. *)
