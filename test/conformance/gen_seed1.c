// conform-seed: 1
// conform-spec: loop nt=3 cores=3 phases=1 accs=3 mutexes=1 slots=1 ro=2 opt
// conform-cores: 3
// conform-many-to-one: false
// conform-optimize: true
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 0;
int g1;
int g2 = 1;
pthread_mutex_t m0;
int out0[3];
int ro0[8];
int ro1[8];

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 4;
    int x1 = 3;
    int x2 = 0;
    for (i = 0; i < 2; i++)
    {
        x2 = x2 + 8 % 4 % 3;
    }
    if (ro1[tid & 7] / 5 % 2 == 0)
        x1 = tid % 4 / 5;
    else
        x2 = ro0[tid & 7] % 5 * 1;
    for (i = 0; i < 7; i++)
    {
        x1 = x1 + (ro0[5 & 7] * 0 + ro1[i & 7]);
    }
    out0[tid] = (x1 + 6) / 5;
    pthread_mutex_lock(&m0);
    g0 = g0 + (4 + ro1[ro1[x2 & 7] & 7]) % 5;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 = g1 + (x1 + ro0[0 & 7]) / 2;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g2 = g2 * 2;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[3];
    pthread_mutex_init(&m0, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 3 + 4) % 8;
    }
    for (t = 0; t < 8; t++)
    {
        ro1[t] = (t * 5 + 6) % 6;
    }
    for (t = 0; t < 3; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 3; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 3; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
