// conform-seed: 11
// conform-spec: loop nt=4 cores=4 phases=2 accs=3 mutexes=2 slots=2 ro=2 ptr
// conform-cores: 4
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 7;
int g1;
int g2 = 1;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[4];
int out1[4];
int ro0[8];
int ro1[8];
int c0 = 2;
int *p0;
pthread_barrier_t bar;

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 5;
    int x1 = 5;
    int x2 = 1;
    if (*p0 % 3 % 2 == 0)
        x1 = tid - (tid - x2);
    else
        x2 = x1 % 7 - (*p0 + x2);
    out0[tid] = x0;
    pthread_mutex_lock(&m0);
    g0 = g0 + (8 % 5 + x1 * 3);
    pthread_mutex_unlock(&m0);
    for (j = 0; j < 2; j++)
    {
        pthread_mutex_lock(&m1);
        g1 += ro0[tid & 7];
        pthread_mutex_unlock(&m1);
    }
    pthread_mutex_lock(&m0);
    g2 *= 2;
    pthread_mutex_unlock(&m0);
    pthread_barrier_wait(&bar);
    if ((out0[(tid + 1) % 4] - ro0[5 & 7]) % 2 == 0)
        x0 = tid % 7 - (6 - 0);
    else
        x2 = tid;
    out1[tid] = x0 * 2;
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    pthread_barrier_init(&bar, NULL, 4);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 1 + 4) % 6;
    }
    for (t = 0; t < 8; t++)
    {
        ro1[t] = (t * 2 + 2) % 7;
    }
    p0 = &c0;
    for (t = 0; t < 4; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 4; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 4; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("OBS deref 0 %d\n", *p0);
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
