// conform-seed: 12
// conform-spec: loop nt=2 cores=2 phases=1 accs=3 mutexes=1 slots=1 ro=0
// conform-cores: 2
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 1;
int g1 = 1;
int g2 = 5;
pthread_mutex_t m0;
int out0[2];

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 5;
    int x2 = 2;
    if (x0 / 3 % 2 == 0)
        x0 = 9 % 4 / 4;
    else
        x1 = x2 / 5 % 3;
    out0[tid] = tid % 5 % 7;
    pthread_mutex_lock(&m0);
    g0 *= 3;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 = g1 * 3;
    pthread_mutex_unlock(&m0);
    for (j = 0; j < 3; j++)
    {
        pthread_mutex_lock(&m0);
        g2 += tid / 5;
        pthread_mutex_unlock(&m0);
    }
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[2];
    pthread_mutex_init(&m0, NULL);
    for (t = 0; t < 2; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 2; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 2; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    return 0;
}
