// conform-seed: 2
// conform-spec: loop nt=4 cores=4 phases=1 accs=1 mutexes=1 slots=2 ro=1 ptr
// conform-cores: 4
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0;
pthread_mutex_t m0;
int out0[4];
int out1[4];
int ro0[8];
int c0 = 7;
int *p0;

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 4;
    int x1 = 1;
    int x2 = 4;
    for (i = 0; i < 2; i++)
    {
        x0 = x0 + (0 - ro0[2 & 7] - x0 / 5);
    }
    for (i = 0; i < 4; i++)
    {
        x2 = x2 + (i * 3 + x0 * 3);
    }
    x0 += (7 + 4) * 0;
    out0[tid] = *p0 - (tid - tid);
    out1[tid] = (6 + tid) * 2;
    pthread_mutex_lock(&m0);
    g0 += tid / 5;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m0, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 5 + 6) % 7;
    }
    p0 = &c0;
    for (t = 0; t < 4; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 4; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 4; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("OBS deref 0 %d\n", *p0);
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
