// conform-seed: 20
// conform-spec: loop nt=2 cores=2 phases=2 accs=2 mutexes=2 slots=2 ro=1 ptr
// conform-cores: 2
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 4;
int g1 = 2;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[2];
int out1[2];
int ro0[8];
int c0 = 9;
int *p0;
pthread_barrier_t bar;

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 5;
    int x2 = 3;
    if (tid % 2 % 2 == 0)
        x1 = tid + 2 + (0 - tid);
    else
        x1 = ro0[tid & 7] * 5 - tid / 3;
    for (i = 0; i < 4; i++)
    {
        x1 = x1 + (3 + 3) % 3;
    }
    if ((ro0[x1 & 7] - 4) % 2 == 0)
        x1 = x1 * 5 - tid * 0;
    else
        x2 = tid * 0 / 5;
    out0[tid] = 3 * 2 - (tid + 0);
    pthread_mutex_lock(&m0);
    g0 = g0 + tid;
    pthread_mutex_unlock(&m0);
    for (j = 0; j < 2; j++)
    {
        pthread_mutex_lock(&m1);
        g1 *= 2;
        pthread_mutex_unlock(&m1);
    }
    pthread_barrier_wait(&bar);
    if (x1 % 2 == 0)
        x1 = (x1 + out0[(tid + 1) % 2]) / 5;
    else
        x1 = (tid - *p0) * 5;
    out1[tid] = out0[(tid + 1) % 2] % 4 - ro0[x2 & 7] * 5;
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[2];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    pthread_barrier_init(&bar, NULL, 2);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 2 + 5) % 7;
    }
    p0 = &c0;
    for (t = 0; t < 2; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 2; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    for (t = 0; t < 2; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 2; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("OBS deref 0 %d\n", *p0);
    return 0;
}
