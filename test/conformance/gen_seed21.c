// conform-seed: 21
// conform-spec: standalone nt=3 cores=3 phases=1 accs=1 mutexes=2 slots=2 ro=1 ptr
// conform-cores: 3
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[3];
int out1[3];
int ro0[8];
int c0 = 6;
int *p0;

void *work0(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 4;
    int x1 = 4;
    int x2 = 3;
    for (i = 0; i < 6; i++)
    {
        x2 = x2 + (i + x2) / 2;
    }
    x2 = tid % 7 + ro0[*p0 & 7] * 5;
    out0[tid] = tid;
    out1[tid] = (3 - *p0) / 2;
    pthread_mutex_lock(&m0);
    g0 = g0 + (ro0[ro0[7 & 7] & 7] % 6 - ro0[9 & 7] % 4);
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work1(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 4;
    int x1 = 3;
    int x2 = 3;
    x0 += (x0 - 8) % 4;
    if (tid * 5 % 2 == 0)
        x2 = (tid + x1) % 4;
    else
        x1 = (tid - ro0[*p0 & 7]) % 5;
    out0[tid] = tid + 0 - 3 * 0;
    out1[tid] = tid - tid / 2;
    for (j = 0; j < 1; j++)
    {
        pthread_mutex_lock(&m0);
        g0 = g0 + (tid + 1) * 5;
        pthread_mutex_unlock(&m0);
    }
    pthread_exit(NULL);
}

void *work2(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 2;
    int x1 = 4;
    int x2 = 4;
    x1 = 1 / 3 % 4;
    x0 = x0 % 4 + ro0[ro0[2 & 7] & 7];
    if ((tid - x1) % 2 == 0)
        x1 = (2 - x2) * 0;
    else
        x0 = 0 * 0 - 2 / 4;
    out0[tid] = *p0 * 0;
    out1[tid] = tid - x0 - (tid - ro0[tid & 7]);
    pthread_mutex_lock(&m0);
    g0 += 6;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t th0;
    pthread_t th1;
    pthread_t th2;
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 2 + 0) % 8;
    }
    p0 = &c0;
    pthread_create(&th0, NULL, work0, (void*)0);
    pthread_create(&th1, NULL, work1, (void*)1);
    pthread_create(&th2, NULL, work2, (void*)2);
    pthread_join(th0, NULL);
    pthread_join(th1, NULL);
    pthread_join(th2, NULL);
    printf("OBS g0 0 %d\n", g0);
    for (t = 0; t < 3; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 3; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("OBS deref 0 %d\n", *p0);
    return 0;
}
