// conform-seed: 24
// conform-spec: loop nt=2 cores=2 phases=2 accs=3 mutexes=2 slots=2 ro=0
// conform-cores: 2
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0;
int g1 = 9;
int g2 = 9;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[2];
int out1[2];
pthread_barrier_t bar;

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 3;
    int x1 = 3;
    int x2 = 0;
    for (i = 0; i < 8; i++)
    {
        x2 = x2 + (8 + tid + i / 2);
    }
    for (i = 0; i < 7; i++)
    {
        x0 = x0 + i % 5;
    }
    for (i = 0; i < 5; i++)
    {
        x1 = x1 + (tid + i - tid / 2);
    }
    out0[tid] = tid / 2 - (x0 + 2);
    pthread_mutex_lock(&m0);
    g0 = g0 + (7 * 4 + (tid - 9));
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m1);
    g1 = g1 + tid / 2 % 6;
    pthread_mutex_unlock(&m1);
    pthread_mutex_lock(&m0);
    g2 = g2 + tid % 2 * 1;
    pthread_mutex_unlock(&m0);
    pthread_barrier_wait(&bar);
    for (i = 0; i < 6; i++)
    {
        x2 = x2 + i / 2 % 7;
    }
    out1[tid] = tid % 5 * 3;
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[2];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    pthread_barrier_init(&bar, NULL, 2);
    for (t = 0; t < 2; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 2; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 2; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 2; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
