// conform-seed: 3
// conform-spec: loop nt=4 cores=2 phases=1 accs=2 mutexes=2 slots=2 ro=1 m21
// conform-cores: 2
// conform-many-to-one: true
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 7;
int g1;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[4];
int out1[4];
int ro0[8];

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 4;
    int x2 = 5;
    x0 += 2 - ro0[tid & 7] - (x1 + tid);
    out0[tid] = 9;
    out1[tid] = 4 % 4 + ro0[x0 & 7] * 4;
    pthread_mutex_lock(&m0);
    g0 = g0 + (x2 - ro0[x0 & 7]) / 2;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m1);
    g1 = g1 + (tid * 3 + 5);
    pthread_mutex_unlock(&m1);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 5 + 2) % 6;
    }
    for (t = 0; t < 4; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 4; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 4; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
