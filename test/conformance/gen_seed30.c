// conform-seed: 30
// conform-spec: standalone nt=2 cores=2 phases=1 accs=3 mutexes=1 slots=1 ro=0
// conform-cores: 2
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0;
int g1 = 2;
int g2 = 5;
pthread_mutex_t m0;
int out0[2];

void *work0(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 4;
    int x2 = 4;
    if (tid % 6 % 2 == 0)
        x2 = (6 - 2) * 0;
    else
        x2 = tid / 5 / 3;
    for (i = 0; i < 6; i++)
    {
        x2 = x2 + (x2 + tid / 2);
    }
    out0[tid] = 6 / 2;
    pthread_mutex_lock(&m0);
    g0 = g0 + 9;
    pthread_mutex_unlock(&m0);
    for (j = 0; j < 1; j++)
    {
        pthread_mutex_lock(&m0);
        g1 *= 3;
        pthread_mutex_unlock(&m0);
    }
    pthread_mutex_lock(&m0);
    g2 = g2 + x1 * 4 % 3;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work1(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 5;
    int x1 = 5;
    int x2 = 5;
    if ((tid + tid) % 2 == 0)
        x2 = 5 - 8 + x0 / 5;
    else
        x2 = 0;
    x2 = (9 + 0) % 4;
    out0[tid] = (4 - 3) * 3;
    pthread_mutex_lock(&m0);
    g0 = g0 + (x1 + tid + (3 - x1));
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 = g1 * 2;
    pthread_mutex_unlock(&m0);
    for (j = 0; j < 1; j++)
    {
        pthread_mutex_lock(&m0);
        g2 += (x2 - 7) / 4;
        pthread_mutex_unlock(&m0);
    }
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t th0;
    pthread_t th1;
    pthread_mutex_init(&m0, NULL);
    pthread_create(&th0, NULL, work0, (void*)0);
    pthread_create(&th1, NULL, work1, (void*)1);
    pthread_join(th0, NULL);
    pthread_join(th1, NULL);
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 2; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
