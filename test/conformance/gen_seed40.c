// conform-seed: 40
// conform-spec: loop nt=4 cores=2 phases=1 accs=1 mutexes=2 slots=1 ro=2 ptr m21
// conform-cores: 2
// conform-many-to-one: true
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 1;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[4];
int ro0[8];
int ro1[8];
int c0 = 4;
int *p0;

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 5;
    int x1 = 3;
    int x2 = 0;
    if ((*p0 + ro1[6 & 7]) % 2 == 0)
        x0 = x1 - 4 + ro1[7 & 7] / 2;
    else
        x1 = ro0[4 & 7];
    if (tid * 0 % 2 == 0)
        x0 = (2 + x0) / 5;
    else
        x2 = tid / 5 - *p0;
    if (5 % 5 % 2 == 0)
        x1 = *p0 / 2 / 5;
    else
        x2 = 1 + tid + tid / 3;
    out0[tid] = x1;
    pthread_mutex_lock(&m0);
    g0 *= 3;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 5 + 2) % 7;
    }
    for (t = 0; t < 8; t++)
    {
        ro1[t] = (t * 3 + 4) % 5;
    }
    p0 = &c0;
    for (t = 0; t < 4; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 4; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    printf("OBS deref 0 %d\n", *p0);
    return 0;
}
