// conform-seed: 41
// conform-spec: standalone nt=4 cores=4 phases=1 accs=3 mutexes=1 slots=2 ro=0 opt
// conform-cores: 4
// conform-many-to-one: false
// conform-optimize: true
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0;
int g1;
int g2;
pthread_mutex_t m0;
int out0[4];
int out1[4];

void *work0(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 3;
    int x2 = 3;
    if ((2 + 6) % 2 == 0)
        x2 = x2 % 4 - tid / 4;
    else
        x1 = tid + 0 + x2 * 0;
    if (x2 % 7 % 2 == 0)
        x2 = (1 - 9) % 3;
    else
        x1 = tid + 5 - 9 % 2;
    out0[tid] = tid % 5 + tid * 4;
    out1[tid] = (tid - tid) % 6;
    pthread_mutex_lock(&m0);
    g0 = g0 + 2 % 7;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 = g1 + (5 / 3 - tid);
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g2 = g2 + 7 * 3 * 3;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work1(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 3;
    int x2 = 1;
    for (i = 0; i < 5; i++)
    {
        x1 = x1 + tid / 2;
    }
    x1 = 1;
    x0 = 8 / 3 * 5;
    out0[tid] = tid / 5;
    out1[tid] = (6 + x1) * 3;
    pthread_mutex_lock(&m0);
    g0 += x1 % 7 - (0 - 6);
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 += tid % 4 - tid % 4;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g2 += 2 / 5 / 4;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work2(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 5;
    int x1 = 1;
    int x2 = 2;
    if ((3 + tid) % 2 == 0)
        x0 = 4 / 5 + (3 + tid);
    else
        x0 = tid / 2;
    x1 += (x2 - tid) % 2;
    if (tid / 4 % 2 == 0)
        x1 = x2 % 4 / 3;
    else
        x0 = x1 * 2 - x0;
    out0[tid] = 7 + tid * 3;
    out1[tid] = tid;
    pthread_mutex_lock(&m0);
    g0 += x1 * 2 + (tid + 5);
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g1 = g1 + (4 - 3);
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m0);
    g2 += 1 % 3 / 4;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work3(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 2;
    int x1 = 0;
    int x2 = 3;
    for (i = 0; i < 2; i++)
    {
        x2 = x2 + 5 / 3 * 4;
    }
    if (7 / 2 % 2 == 0)
        x2 = 8;
    else
        x2 = (tid + tid) % 7;
    out0[tid] = (1 + tid) % 6;
    out1[tid] = 0 - x1 + tid;
    for (j = 0; j < 1; j++)
    {
        pthread_mutex_lock(&m0);
        g0 += tid / 3;
        pthread_mutex_unlock(&m0);
    }
    for (j = 0; j < 1; j++)
    {
        pthread_mutex_lock(&m0);
        g1 = g1 + x2;
        pthread_mutex_unlock(&m0);
    }
    pthread_mutex_lock(&m0);
    g2 = g2 + tid / 2 / 4;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t th0;
    pthread_t th1;
    pthread_t th2;
    pthread_t th3;
    pthread_mutex_init(&m0, NULL);
    pthread_create(&th0, NULL, work0, (void*)0);
    pthread_create(&th1, NULL, work1, (void*)1);
    pthread_create(&th2, NULL, work2, (void*)2);
    pthread_create(&th3, NULL, work3, (void*)3);
    pthread_join(th0, NULL);
    pthread_join(th1, NULL);
    pthread_join(th2, NULL);
    pthread_join(th3, NULL);
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 4; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    return 0;
}
