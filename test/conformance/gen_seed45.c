// conform-seed: 45
// conform-spec: loop nt=4 cores=4 phases=1 accs=3 mutexes=2 slots=1 ro=2
// conform-cores: 4
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 2;
int g1 = 1;
int g2;
pthread_mutex_t m0;
pthread_mutex_t m1;
int out0[4];
int ro0[8];
int ro1[8];

void *work(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 4;
    int x1 = 3;
    int x2 = 0;
    if ((ro0[4 & 7] + 8) % 2 == 0)
        x2 = (tid - x1) * 4;
    else
        x1 = 3;
    out0[tid] = (x1 + tid) / 3;
    pthread_mutex_lock(&m0);
    g0 *= 2;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m1);
    g1 *= 3;
    pthread_mutex_unlock(&m1);
    pthread_mutex_lock(&m0);
    g2 += 8 % 7 / 3;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m0, NULL);
    pthread_mutex_init(&m1, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 2 + 5) % 9;
    }
    for (t = 0; t < 8; t++)
    {
        ro1[t] = (t * 2 + 5) % 8;
    }
    for (t = 0; t < 4; t++)
    {
        pthread_create(&threads[t], NULL, work, (void*)t);
    }
    for (t = 0; t < 4; t++)
    {
        pthread_join(threads[t], NULL);
    }
    printf("OBS g0 0 %d\n", g0);
    printf("OBS g1 0 %d\n", g1);
    printf("OBS g2 0 %d\n", g2);
    for (t = 0; t < 4; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    return 0;
}
