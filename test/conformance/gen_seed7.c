// conform-seed: 7
// conform-spec: standalone nt=2 cores=2 phases=1 accs=1 mutexes=1 slots=2 ro=1 opt
// conform-cores: 2
// conform-many-to-one: false
// conform-optimize: true
// conform-expect: agree

#include <stdio.h>
#include <pthread.h>

int g0 = 9;
pthread_mutex_t m0;
int out0[2];
int out1[2];
int ro0[8];

void *work0(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 1;
    int x1 = 1;
    int x2 = 4;
    for (i = 0; i < 6; i++)
    {
        x1 = x1 + (tid - tid - x1 / 5);
    }
    if (8 % 5 % 2 == 0)
        x2 = ro0[tid & 7] % 3 + (7 + 5);
    else
        x0 = (2 + 7) / 2;
    out0[tid] = 8 / 5 + (tid + tid);
    out1[tid] = 4 / 4 / 3;
    pthread_mutex_lock(&m0);
    g0 += ro0[ro0[ro0[tid & 7] & 7] & 7] + 1 * 2;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

void *work1(void *arg)
{
    int tid = (int)arg;
    int i;
    int j;
    int x0 = 2;
    int x1 = 1;
    int x2 = 5;
    if (tid % 2 == 0)
        x0 = tid % 5 / 5;
    else
        x1 = 8 % 6 - ro0[0 & 7] * 0;
    out0[tid] = 8 + x2 / 3;
    out1[tid] = 2 - x1 + ro0[tid & 7];
    pthread_mutex_lock(&m0);
    g0 += (6 + ro0[x0 & 7]) % 3;
    pthread_mutex_unlock(&m0);
    pthread_exit(NULL);
}

int main(void)
{
    int t;
    pthread_t th0;
    pthread_t th1;
    pthread_mutex_init(&m0, NULL);
    for (t = 0; t < 8; t++)
    {
        ro0[t] = (t * 3 + 0) % 6;
    }
    pthread_create(&th0, NULL, work0, (void*)0);
    pthread_create(&th1, NULL, work1, (void*)1);
    pthread_join(th0, NULL);
    pthread_join(th1, NULL);
    printf("OBS g0 0 %d\n", g0);
    for (t = 0; t < 2; t++)
    {
        printf("OBS out0 %d %d\n", t, out0[t]);
    }
    for (t = 0; t < 2; t++)
    {
        printf("OBS out1 %d %d\n", t, out1[t]);
    }
    printf("checksum %d\n", g0 + out0[0]);
    return 0;
}
