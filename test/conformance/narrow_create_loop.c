// conform-spec: hand-written: one 2-thread create loop on a 4-core chip
// conform-cores: 4
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree
// conform-note: Companion to two_create_loops.c: a single create loop that is
// conform-note: narrower than the chip.  Without the range guard, cores 2 and
// conform-note: 3 ran phantom thread instances and wrote out[2] and out[3],
// conform-note: which the pthread baseline leaves at zero.

#include <stdio.h>
#include <pthread.h>

int out[4];

void *work(void *arg) {
    int tid = (int) arg;
    out[tid] = tid + 10;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[2];
    for (t = 0; t < 2; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 2; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < 4; t++) {
        printf("OBS out %d %d\n", t, out[t]);
    }
    return 0;
}
