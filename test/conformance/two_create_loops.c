// conform-spec: hand-written: two 8-thread create loops on a 16-core chip
// conform-cores: 16
// conform-many-to-one: false
// conform-optimize: false
// conform-expect: agree
// conform-note: Regression for the unguarded-create-loop bug found by the
// conform-note: fuzzer probes.  threads-to-processes used to dismantle every
// conform-note: create loop into a bare direct call, so all 16 cores ran both
// conform-note: workers with tid = myID: workb's phantom instances (tid 8..15)
// conform-note: wrote outb[8..15], past the 32-byte line of outb and straight
// conform-note: into outa's allocation, after worka's legitimate writes.  The
// conform-note: pass now guards each create site with its thread-ID range
// conform-note: (if (myID < 8) / if (myID >= 8 && myID < 16)) and indexes the
// conform-note: second loop by myID - 8.

#include <stdio.h>
#include <pthread.h>

int outb[8];
int outa[8];

void *worka(void *arg) {
    int tid = (int) arg;
    outa[tid] = tid + 10;
    pthread_exit(NULL);
}

void *workb(void *arg) {
    int tid = (int) arg;
    outb[tid] = tid + 20;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t a[8];
    pthread_t b[8];
    for (t = 0; t < 8; t++) {
        pthread_create(&a[t], NULL, worka, (void *) t);
    }
    for (t = 0; t < 8; t++) {
        pthread_create(&b[t], NULL, workb, (void *) t);
    }
    for (t = 0; t < 8; t++) {
        pthread_join(a[t], NULL);
    }
    for (t = 0; t < 8; t++) {
        pthread_join(b[t], NULL);
    }
    for (t = 0; t < 8; t++) {
        printf("OBS outa %d %d\n", t, outa[t]);
    }
    for (t = 0; t < 8; t++) {
        printf("OBS outb %d %d\n", t, outb[t]);
    }
    return 0;
}
