#include <stdio.h>
#include "RCCE.h"

int *nsteps;
double *scale;
double *total;

void *work(void *tid)
{
    int i;
    double sum = 0.0;
    {
        int __pre_nsteps_0 = *nsteps;
        double __pre_scale_1 = *scale;
        for (i = 0; i < __pre_nsteps_0; i++)
        {
            sum = sum + __pre_scale_1 * i;
        }
    }
    RCCE_acquire_lock(0);
    *total = *total + sum;
    RCCE_release_lock(0);
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    nsteps = (int*)RCCE_shmalloc(4);
    scale = (double*)RCCE_shmalloc(8);
    total = (double*)RCCE_shmalloc(8);
    int myID;
    myID = RCCE_ue();
    *nsteps = 4096;
    *scale = 3.0;
    *total = 0.0;
    work((void*)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("total = %f\n", *total);
    RCCE_finalize();
    return 0;
}
