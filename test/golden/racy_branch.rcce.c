#include <stdio.h>
#include "RCCE.h"

int *data;
int *enable;

void *work(void *tid)
{
    if (*enable)
    {
        *data = *data + 1;
    }
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    data = (int*)RCCE_shmalloc(sizeof(int) * 1);
    enable = (int*)RCCE_shmalloc(sizeof(int) * 1);
    int myID;
    myID = RCCE_ue();
    work((void*)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("data = %d\n", *data);
    RCCE_finalize();
    return 0;
}
