#include <stdio.h>
#include "RCCE.h"

int *counter;

void *work(void *tid)
{
    int i;
    for (i = 0; i < 1000; i++)
    {
        *counter = *counter + 1;
    }
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    counter = (int*)RCCE_shmalloc(4);
    int myID;
    myID = RCCE_ue();
    work((void*)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("counter = %d\n", *counter);
    RCCE_finalize();
    return 0;
}
