open Cfront

(* Thread-modular abstract interpretation: the interval domain, the
   interference fixpoint (against the naive sequential strawman), the
   bounds verdicts on the checked-in programs, and the sharing-lattice
   feedback. *)

let parse src = Parser.program ~file:"t.c" src

let analyze ?(interference = true) ?(ncores = 4) src =
  Absint.analyze ~interference ~ncores (parse src)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* All obligations whose rendered access path is [path]. *)
let obligations_for summary path =
  List.filter
    (fun (o : Absint.Oblig.t) -> o.Absint.Oblig.o_path = path)
    summary.Absint.Oblig.s_obligations

let the_status summary path =
  match obligations_for summary path with
  | [ o ] -> o.Absint.Oblig.o_status
  | [] -> Alcotest.failf "no obligation for %s" path
  | _ -> Alcotest.failf "several obligations for %s" path

let is_proved = function Absint.Oblig.Proved -> true | _ -> false

(* --- the interval domain ---------------------------------------------------- *)

let test_itv_ops () =
  let open Absint.Itv in
  Alcotest.(check string) "join" "[0,9]" (to_string (join (const 0) (const 9)));
  Alcotest.(check string) "widen keeps stable lo" "[0,+inf]"
    (to_string (widen (range 0 3) (range 0 4)));
  Alcotest.(check string) "widen drops falling lo" "[-inf,3]"
    (to_string (widen (range 2 3) (range 1 3)));
  Alcotest.(check string) "mask bounds any nonneg" "[0,7]"
    (to_string (binop Ast.Band (range 0 1000000) (const 7)));
  Alcotest.(check string) "mod positive divisor" "[0,4]"
    (to_string (binop Ast.Mod (range 0 100) (const 5)));
  Alcotest.(check string) "filter < shaves the top" "[0,7]"
    (to_string (filter Ast.Lt (range 0 100) (const 8)));
  Alcotest.(check bool) "contained" true
    (contained_in (range 1 3) ~lo:0 ~hi:3);
  Alcotest.(check bool) "disjoint" true
    (disjoint_from (range 4 7) ~lo:0 ~hi:3)

(* --- interference iteration ------------------------------------------------- *)

(* One thread pushes the shared index out of range while another uses it
   as a subscript.  A sequential analysis that ignores interference sees
   the initial value and wrongly proves the access; the thread-modular
   fixpoint must account for the concurrent write. *)
let interfering_index =
  {|#include <pthread.h>
    int arr[8];
    int g;
    void *bump(void *a) {
      g = 9;
      pthread_exit(NULL);
    }
    void *reader(void *a) {
      arr[g] = 1;
      pthread_exit(NULL);
    }
    int main() {
      pthread_t t1;
      pthread_t t2;
      pthread_create(&t1, NULL, bump, NULL);
      pthread_create(&t2, NULL, reader, NULL);
      pthread_join(t1, NULL);
      pthread_join(t2, NULL);
      return 0;
    }|}

let test_naive_is_unsound_modular_is_not () =
  let naive = analyze ~interference:false interfering_index in
  let modular = analyze interfering_index in
  Alcotest.(check bool) "naive sequential analysis wrongly proves" true
    (is_proved (the_status naive "arr[g]"));
  Alcotest.(check bool) "thread-modular fixpoint does not" false
    (is_proved (the_status modular "arr[g]"))

(* A cross-thread accumulator forces widening: the store must reach a
   fixpoint (well under the round cap), the masked subscript must stay
   proved and the raw one must not. *)
let accumulator =
  {|#include <pthread.h>
    int ro[8];
    int idx;
    void *w(void *a) {
      int i;
      for (i = 0; i < 100; i++) {
        idx = idx + 1;
      }
      ro[idx & 7] = 1;
      ro[idx] = 2;
      pthread_exit(NULL);
    }
    int main() {
      pthread_t t1;
      pthread_t t2;
      pthread_create(&t1, NULL, w, NULL);
      pthread_create(&t2, NULL, w, NULL);
      pthread_join(t1, NULL);
      pthread_join(t2, NULL);
      return 0;
    }|}

let test_widening_converges_and_stays_precise () =
  let s = analyze accumulator in
  Alcotest.(check bool) "fixpoint reached below the round cap" true
    (s.Absint.Oblig.s_rounds < 64);
  Alcotest.(check bool) "masked subscript proved" true
    (is_proved (the_status s "ro[idx & 7]"));
  Alcotest.(check bool) "raw widened subscript not proved" false
    (is_proved (the_status s "ro[idx]"))

(* Per-slot writes through the create-loop counter: the spawn argument's
   interval must stay tight enough to prove every slot in range. *)
let slot_writes =
  {|#include <pthread.h>
    int out[4];
    void *work(void *arg) {
      int tid = (int)arg;
      out[tid] = tid;
      pthread_exit(NULL);
    }
    int main() {
      int t;
      pthread_t threads[4];
      for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *)t);
      }
      for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
      }
      return 0;
    }|}

let test_spawn_interval_proves_slots () =
  let s = analyze slot_writes in
  Alcotest.(check bool) "out[tid] proved" true
    (is_proved (the_status s "out[tid]"));
  match s.Absint.Oblig.s_spawns with
  | [ sp ] ->
      Alcotest.(check string) "thread ids" "[0,3]"
        sp.Absint.Oblig.sp_interval
  | l -> Alcotest.failf "expected one spawn fact, got %d" (List.length l)

(* Branch-polarity refinement: the same subscript proves under its guard
   and not outside it. *)
let guarded =
  {|int arr[8];
    int main(int argc, char **argv) {
      int i = argc;
      if (i >= 0 && i < 8) {
        arr[i] = 1;
      }
      arr[i] = 2;
      return 0;
    }|}

let test_branch_refinement () =
  let s = analyze guarded in
  let statuses =
    List.map
      (fun (o : Absint.Oblig.t) -> is_proved o.Absint.Oblig.o_status)
      (obligations_for s "arr[i]")
  in
  Alcotest.(check (list bool)) "guarded proved, unguarded not"
    [ true; false ] statuses

(* --- bounds verdicts on the checked-in programs ----------------------------- *)

(* Replicates `hsmcc verify`: analyze the source, and for a Pthread
   program also its RCCE translation (on a later session generation). *)
let verify_runs ~file ~options src =
  let program = Parser.program ~file src in
  let session = Session.create ~file ~options program in
  let source = Session.absint_summary session in
  if Absint.detect_mode program = Absint.Oblig.Rcce then (session, [ source ])
  else begin
    let (_ : Ast.program * Translate.Driver.report) =
      Translate.Driver.translate_session session
    in
    (session, [ source; Session.absint_summary session ])
  end

let examples_options =
  { Translate.Pass.default_options with Translate.Pass.ncores = 4 }

let corpus_options =
  { Translate.Pass.default_options with
    Translate.Pass.ncores = 8; many_to_one = true }

let test_examples_fully_proved () =
  List.iter
    (fun name ->
      let file = "examples/c/" ^ name in
      let _, runs = verify_runs ~file ~options:examples_options
          (read_file ("../examples/c/" ^ name))
      in
      Alcotest.(check int) (name ^ ": two runs") 2 (List.length runs);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s (%s): all proved" name
               (Absint.Oblig.mode_to_string s.Absint.Oblig.s_mode))
            true
            (Absint.Oblig.all_proved s))
        runs)
    [ "locked_counter.c"; "racy_branch.c"; "unlocked_counter.c" ]

let test_corpus_fully_proved () =
  let dir = "conformance" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length files >= 10);
  List.iter
    (fun name ->
      let file = "test/conformance/" ^ name in
      let _, runs = verify_runs ~file ~options:corpus_options
          (read_file (Filename.concat dir name))
      in
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s (%s): all proved" name
               (Absint.Oblig.mode_to_string s.Absint.Oblig.s_mode))
            true
            (Absint.Oblig.all_proved s))
        runs)
    files

let test_unsafe_example_flagged () =
  let file = "test/verify/oob_off_by_one.c" in
  let session, runs =
    verify_runs ~file ~options:examples_options
      (read_file "verify/oob_off_by_one.c")
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "not all proved" false
        (Absint.Oblig.all_proved s))
    runs;
  (* the diagnostic names the offending access; the translated run's
     names the shmalloc region specifically *)
  let diags = List.concat_map Absint.diags_of runs in
  Alcotest.(check bool) "diagnostic names the access" true
    (List.exists
       (fun (d : Diag.t) ->
         let m = d.Diag.message in
         let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s
             && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         contains m "out[tid + 1]" && contains m "shmalloc region")
       diags);
  ignore (Session.generation session : int)

(* --- golden JSON reports ---------------------------------------------------- *)

let golden_cases =
  [ ("locked_counter", "examples/c/locked_counter.c",
     "../examples/c/locked_counter.c", examples_options);
    ("racy_branch", "examples/c/racy_branch.c",
     "../examples/c/racy_branch.c", examples_options);
    ("unlocked_counter", "examples/c/unlocked_counter.c",
     "../examples/c/unlocked_counter.c", examples_options);
    ("gen_seed1", "test/conformance/gen_seed1.c",
     "conformance/gen_seed1.c", corpus_options);
    ("gen_seed12", "test/conformance/gen_seed12.c",
     "conformance/gen_seed12.c", corpus_options);
    ("oob_off_by_one", "test/verify/oob_off_by_one.c",
     "verify/oob_off_by_one.c", examples_options) ]

(* Byte-compare against `hsmcc verify --json` run from the repository
   root (the [~file] passed to the renderer is the CLI-visible path, so
   the documents match exactly). *)
let test_golden_verify_json () =
  List.iter
    (fun (name, file, disk, options) ->
      let _, runs = verify_runs ~file ~options (read_file disk) in
      let got = Absint.render_json ~file runs in
      let want = read_file ("golden/" ^ name ^ ".verify.json") in
      Alcotest.(check string) (name ^ ".verify.json") want got)
    golden_cases

(* --- sharing-lattice feedback ----------------------------------------------- *)

(* [scratch] is touched by exactly one thread instance and by nobody
   else, but Stage 1-3 can only call a global Shared.  The verifier's
   thread-extent fact demotes it to Private; [acc] (also read by main)
   must stay Shared. *)
let sharpen_src =
  {|#include <pthread.h>
    int scratch;
    int acc;
    pthread_mutex_t m;
    void *work(void *arg) {
      scratch = scratch + 3;
      pthread_mutex_lock(&m);
      acc = acc + scratch;
      pthread_mutex_unlock(&m);
      pthread_exit(NULL);
    }
    int main() {
      pthread_t t1;
      pthread_create(&t1, NULL, work, NULL);
      pthread_join(t1, NULL);
      return acc;
    }|}

let sharing_status session name =
  let scope = Session.scope session in
  let info =
    Analysis.Scope_analysis.get scope (Ir.Var_id.global name)
  in
  Analysis.Sharing.status info.Analysis.Varinfo.sharing

let test_sharpen_demotes_thread_local_global () =
  let options =
    { Translate.Pass.default_options with
      Translate.Pass.ncores = 4; sharpen = true }
  in
  let session = Session.create ~options (parse sharpen_src) in
  let (_ : Analysis.Pipeline.t) = Session.pipeline session in
  Alcotest.(check (list string)) "demoted names" [ "scratch" ]
    (Session.sharpened session);
  Alcotest.(check string) "scratch is private" "false"
    (Analysis.Sharing.status_to_string (sharing_status session "scratch"));
  Alcotest.(check string) "acc stays shared" "true"
    (Analysis.Sharing.status_to_string (sharing_status session "acc"))

let test_without_sharpen_nothing_moves () =
  let options =
    { Translate.Pass.default_options with Translate.Pass.ncores = 4 }
  in
  let session = Session.create ~options (parse sharpen_src) in
  let (_ : Analysis.Pipeline.t) = Session.pipeline session in
  Alcotest.(check string) "scratch stays shared" "true"
    (Analysis.Sharing.status_to_string (sharing_status session "scratch"));
  Alcotest.(check int) "sharpen provider never ran" 0
    (Session.invocations session "sharpen")

(* Sharpening changes the translation (the demoted global stays a plain
   per-core variable instead of moving to shared memory) but must not
   change the observable behaviour. *)
let test_sharpen_translation_agrees () =
  let translate sharpen =
    let options =
      { Translate.Pass.default_options with
        Translate.Pass.ncores = 4; sharpen }
    in
    let session = Session.create ~options (parse sharpen_src) in
    let translated, _ = Translate.Driver.translate_session session in
    Pretty.program translated
  in
  let plain = translate false and sharp = translate true in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "without sharpening scratch is shmalloc-backed"
    true (contains plain "int *scratch");
  Alcotest.(check bool) "with sharpening scratch stays a plain global"
    true (contains sharp "int scratch;");
  Alcotest.(check bool) "acc is shmalloc-backed either way" true
    (contains sharp "int *acc");
  (* and the dual-execution oracle still sees identical behaviour *)
  let cfg =
    { Conform.Oracle.options =
        { Translate.Pass.default_options with
          Translate.Pass.ncores = 4; sharpen = true };
      passes = None;
      interp = Cexec.Interp.Compiled;
      sim_jobs = 1 }
  in
  match Conform.Oracle.check cfg (parse sharpen_src) with
  | Conform.Oracle.Agree -> ()
  | Conform.Oracle.Diverge f ->
      Alcotest.failf "sharpened translation diverges: %s"
        (Conform.Oracle.failure_to_string f)

let suite =
  [
    Alcotest.test_case "interval domain operations" `Quick test_itv_ops;
    Alcotest.test_case "interference defeats the naive analysis" `Quick
      test_naive_is_unsound_modular_is_not;
    Alcotest.test_case "widening converges, masking stays precise" `Quick
      test_widening_converges_and_stays_precise;
    Alcotest.test_case "spawn interval proves per-slot writes" `Quick
      test_spawn_interval_proves_slots;
    Alcotest.test_case "branch-polarity refinement" `Quick
      test_branch_refinement;
    Alcotest.test_case "examples fully proved (both runs)" `Quick
      test_examples_fully_proved;
    Alcotest.test_case "regression corpus fully proved" `Quick
      test_corpus_fully_proved;
    Alcotest.test_case "unsafe example flagged with its access path" `Quick
      test_unsafe_example_flagged;
    Alcotest.test_case "golden verify --json reports" `Quick
      test_golden_verify_json;
    Alcotest.test_case "sharpening demotes a thread-local global" `Quick
      test_sharpen_demotes_thread_local_global;
    Alcotest.test_case "no sharpening without the option" `Quick
      test_without_sharpen_nothing_moves;
    Alcotest.test_case "sharpened translation agrees with the baseline"
      `Quick test_sharpen_translation_agrees;
  ]
