open Cfront

(* The differential conformance harness: generator determinism, the
   dual-execution oracle on the checked-in regression corpus, the
   killing-mutation check (a hand-broken pipeline must be caught and the
   counterexample shrunk), and golden translations of the examples. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let data_dir name =
  if Sys.file_exists ("../" ^ name) then "../" ^ name else name

(* ---------------------------------------------------------------- *)

let test_generator_determinism () =
  (* a fixed seed is a pure function: two independent generations give
     byte-identical corpora *)
  let corpus base =
    List.init 20 (fun i ->
        let _, p = Conform.Gen.generate ~seed:(base + i) in
        Conform.Gen.source_of_program p)
    |> String.concat "\n"
  in
  Alcotest.(check string) "same seed, same corpus" (corpus 42) (corpus 42);
  Alcotest.(check bool) "different seeds differ" false
    (String.equal (corpus 42) (corpus 43))

let test_generated_programs_reparse () =
  (* the pretty-printed program parses back to the same source — the
     corpus file bodies are self-contained *)
  for seed = 100 to 109 do
    let _, p = Conform.Gen.generate ~seed in
    let src = Conform.Gen.source_of_program p in
    let reparsed = Parser.program ~file:"gen.c" src in
    Alcotest.(check string)
      (Printf.sprintf "seed %d reparses to itself" seed)
      src
      (Conform.Gen.source_of_program reparsed)
  done

let test_quick_fuzz_agrees () =
  (* a small fresh fuzz budget: translated executions must match the
     pthread baseline on every generated program *)
  let summary =
    Conform.Harness.run ~shrink_budget:0 ~seed:4242 ~count:12 ()
  in
  Alcotest.(check int) "all programs agree" 0
    (List.length summary.Conform.Harness.s_failures)

let test_corpus_replays () =
  let dir = data_dir "test/conformance" in
  let dir = if Sys.file_exists dir then dir else "conformance" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus has at least 10 programs" true
    (List.length files >= 10);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match Conform.Harness.replay ~file:path (read_file path) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" f e)
    files

let test_killing_mutation () =
  (* dropping the mutex->test-and-set pass must produce a detected,
     shrinkable divergence: lock/unlock calls silently disappear and the
     accumulator updates race *)
  let sabotage =
    match Conform.Harness.sabotage_of_string "drop-pass:mutex-convert" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let summary =
    Conform.Harness.run ~shrink_budget:20 ~sabotage ~seed:7 ~count:6 ()
  in
  match summary.Conform.Harness.s_failures with
  | [] -> Alcotest.fail "sabotaged pipeline was not caught"
  | o :: _ ->
      Alcotest.(check string) "divergence kind" "output-mismatch"
        (Conform.Oracle.kind_of_failure o.Conform.Harness.o_failure);
      Alcotest.(check bool) "counterexample was shrunk" true
        (Conform.Shrink.size o.o_shrunk < Conform.Shrink.size o.o_program);
      (* the minimized program still diverges under the sabotage, and
         still agrees under the honest pipeline *)
      let cfg = Conform.Oracle.config_of_spec o.o_spec in
      let broken = Conform.Harness.apply_sabotage sabotage cfg in
      (match Conform.Oracle.check broken o.o_shrunk with
      | Conform.Oracle.Diverge _ -> ()
      | Conform.Oracle.Agree ->
          Alcotest.fail "shrunk program no longer diverges");
      (match Conform.Oracle.check cfg o.o_shrunk with
      | Conform.Oracle.Agree -> ()
      | Conform.Oracle.Diverge f ->
          Alcotest.failf "shrunk program diverges without sabotage: %s"
            (Conform.Oracle.failure_to_string f))

let test_sabotage_shared_rewrite_caught () =
  (* dropping shared-rewrite leaves every global private per core, so
     the observations disagree *)
  let sabotage =
    match Conform.Harness.sabotage_of_string "drop-pass:shared-rewrite" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let summary =
    Conform.Harness.run ~shrink_budget:0 ~sabotage ~seed:1 ~count:6 ()
  in
  Alcotest.(check bool) "at least one divergence" true
    (summary.Conform.Harness.s_failures <> [])

let test_unknown_sabotage_rejected () =
  match Conform.Harness.sabotage_of_string "drop-pass:no-such-pass" with
  | Ok _ -> Alcotest.fail "accepted an unknown pass"
  | Error _ -> ()

let test_golden_translations () =
  (* translator output for the three hand-written examples is pinned:
     any change to the pipeline shows up as a reviewable golden diff *)
  let examples = data_dir "examples/c" in
  let golden = data_dir "test/golden" in
  let golden = if Sys.file_exists golden then golden else "golden" in
  List.iter
    (fun name ->
      let src = read_file (Filename.concat examples (name ^ ".c")) in
      let options =
        { Translate.Pass.default_options with Translate.Pass.ncores = 4 }
      in
      let translated, _ =
        Translate.Driver.translate_to_string ~options ~file:(name ^ ".c") src
      in
      let expected = read_file (Filename.concat golden (name ^ ".rcce.c")) in
      Alcotest.(check string)
        (name ^ " matches its golden translation")
        expected translated)
    [ "locked_counter"; "unlocked_counter"; "racy_branch" ]

let test_oracle_flags_broken_output () =
  (* the comparator itself: a converted program whose observation count
     or value is off must be rejected, not silently accepted *)
  let src =
    {|#include <stdio.h>
#include <pthread.h>

int out[2];

void *work(void *arg) {
    int tid = (int) arg;
    out[tid] = tid + 10;
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[2];
    for (t = 0; t < 2; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 2; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("OBS out 0 %d\n", out[0]);
    printf("OBS out 1 %d\n", out[1]);
    return 0;
}
|}
  in
  let program = Parser.program ~file:"oracle.c" src in
  let cfg = Conform.Oracle.default_config ~ncores:2 in
  (match Conform.Oracle.check cfg program with
  | Conform.Oracle.Agree -> ()
  | Conform.Oracle.Diverge f ->
      Alcotest.failf "trivial program diverges: %s"
        (Conform.Oracle.failure_to_string f));
  (* dropping shared-rewrite leaves [out] private per core: each core
     only sees its own slot write, so the other slot prints 0 and the
     oracle must flag the value mismatch deterministically *)
  let sabotage =
    match Conform.Harness.sabotage_of_string "drop-pass:shared-rewrite" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let broken = Conform.Harness.apply_sabotage sabotage cfg in
  match Conform.Oracle.check broken program with
  | Conform.Oracle.Diverge _ -> ()
  | Conform.Oracle.Agree ->
      Alcotest.fail "dropping shared-rewrite went unnoticed"

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick
      test_generator_determinism;
    Alcotest.test_case "generated programs reparse" `Quick
      test_generated_programs_reparse;
    Alcotest.test_case "quick fuzz agrees" `Slow test_quick_fuzz_agrees;
    Alcotest.test_case "regression corpus replays" `Slow test_corpus_replays;
    Alcotest.test_case "killing mutation: mutex-convert" `Slow
      test_killing_mutation;
    Alcotest.test_case "killing mutation: shared-rewrite" `Slow
      test_sabotage_shared_rewrite_caught;
    Alcotest.test_case "unknown sabotage rejected" `Quick
      test_unknown_sabotage_rejected;
    Alcotest.test_case "golden example translations" `Quick
      test_golden_translations;
    Alcotest.test_case "oracle flags broken pipelines" `Quick
      test_oracle_flags_broken_output;
  ]
