(* The causal observability layer: the full-accounting identity
   (sum over contexts and categories == wall x contexts, exactly), the
   critical path, the what-if ceilings, and their agreement with the
   other observers (profiler lock table, engine stats, LBTS windows).

   Everything here is simulated time, so every assertion is exact — no
   tolerances except where the acceptance criterion itself names one. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let data_dir name =
  if Sys.file_exists ("../" ^ name) then "../" ^ name else name

let parse path = Cfront.Parser.program ~file:path (read_file path)

let parse_src ~file src = Cfront.Parser.program ~file src

let translate ~ncores ~optimize program =
  let options =
    { Translate.Pass.default_options with Translate.Pass.ncores; optimize }
  in
  fst (Translate.Driver.translate_program ~options program)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---------------------------------------------------------------- *)
(* the accounting identity *)

(* The acceptance workload: translated hot_loop on 8 cores.  Under RCCE
   contexts == cores, so the identity literally reads "sum == cores x
   final ps". *)
let test_identity_hot_loop () =
  let program = parse (Filename.concat (data_dir "examples/c") "hot_loop.c") in
  let translated = translate ~ncores:8 ~optimize:false program in
  let cp = Scc.Critpath.create () in
  let r = Cexec.Interp.run_rcce ~critpath:cp ~ncores:8 translated in
  Alcotest.(check int) "contexts == cores" 8 (Scc.Critpath.n_ctxs cp);
  Alcotest.(check int) "wall == final ps" r.Cexec.Interp.elapsed_ps
    (Scc.Critpath.wall_ps cp);
  let sum, product = Scc.Critpath.identity cp in
  Alcotest.(check int) "identity: sum == wall x contexts" product sum;
  Alcotest.(check bool) "identity_ok" true (Scc.Critpath.identity_ok cp);
  (* the category totals are the same partition of the same ps *)
  let totals = Scc.Critpath.account_totals cp in
  Alcotest.(check int) "totals re-sum to the identity" sum
    (Array.fold_left ( + ) 0 totals)

(* The recorder must not observe the partitioned scheduler: the whole
   account matrix is cell-identical for every --sim-jobs value. *)
let test_identity_across_sim_jobs () =
  let program = parse (Filename.concat (data_dir "examples/c") "hot_loop.c") in
  let translated = translate ~ncores:8 ~optimize:false program in
  let run sim_jobs =
    let cp = Scc.Critpath.create () in
    let r = Cexec.Interp.run_rcce ~critpath:cp ~sim_jobs ~ncores:8 translated in
    (cp, r)
  in
  let cp1, r1 = run 1 in
  List.iter
    (fun sim_jobs ->
      let cp, r = run sim_jobs in
      Alcotest.(check string)
        (Printf.sprintf "sim_jobs=%d: output" sim_jobs)
        r1.Cexec.Interp.output r.Cexec.Interp.output;
      Alcotest.(check int)
        (Printf.sprintf "sim_jobs=%d: wall" sim_jobs)
        (Scc.Critpath.wall_ps cp1) (Scc.Critpath.wall_ps cp);
      Alcotest.(check bool)
        (Printf.sprintf "sim_jobs=%d: identity" sim_jobs)
        true (Scc.Critpath.identity_ok cp);
      for ctx = 0 to Scc.Critpath.n_ctxs cp1 - 1 do
        for cat = 0 to Scc.Critpath.n_categories - 1 do
          Alcotest.(check int)
            (Printf.sprintf "sim_jobs=%d: account ctx=%d cat=%d" sim_jobs
               ctx cat)
            (Scc.Critpath.account cp1 ~ctx ~cat)
            (Scc.Critpath.account cp ~ctx ~cat)
        done
      done)
    [ 3; 8 ]

(* ---------------------------------------------------------------- *)
(* LBTS window accounting (Engine.par_report / Stats.domain_events) *)

let test_par_report_accounting () =
  let program = parse (Filename.concat (data_dir "examples/c") "hot_loop.c") in
  let translated = translate ~ncores:8 ~optimize:false program in
  let run () = Cexec.Interp.run_rcce ~sim_jobs:8 ~ncores:8 translated in
  let r = run () in
  let eng = r.Cexec.Interp.engine in
  let rep = Scc.Engine.par_report eng in
  Alcotest.(check int) "domain events sum to Engine.events"
    (Scc.Engine.events eng)
    (Array.fold_left ( + ) 0 rep.Scc.Engine.domain_events);
  Alcotest.(check int) "stats mirror the same counters"
    (Scc.Engine.events eng)
    (Array.fold_left ( + ) 0
       (Scc.Engine.stats eng).Scc.Stats.domain_events);
  Alcotest.(check bool) "active_max <= partitions" true
    (rep.Scc.Engine.active_max <= rep.Scc.Engine.partitions);
  Alcotest.(check bool) "active_sum within [windows, windows x partitions]"
    true
    (rep.Scc.Engine.active_sum >= rep.Scc.Engine.windows
    && rep.Scc.Engine.active_sum
       <= rep.Scc.Engine.windows * rep.Scc.Engine.partitions);
  Alcotest.(check bool) "ceiling >= 1" true
    (Scc.Engine.par_ceiling rep >= 1.0);
  (* deterministic: a second identical run reproduces the window
     accounting byte for byte *)
  let rep' = Scc.Engine.par_report (run ()).Cexec.Interp.engine in
  Alcotest.(check int) "windows reproducible" rep.Scc.Engine.windows
    rep'.Scc.Engine.windows;
  Alcotest.(check int) "active_sum reproducible" rep.Scc.Engine.active_sum
    rep'.Scc.Engine.active_sum;
  Alcotest.(check int) "active_max reproducible" rep.Scc.Engine.active_max
    rep'.Scc.Engine.active_max;
  Alcotest.(check (array int)) "domain events reproducible"
    rep.Scc.Engine.domain_events rep'.Scc.Engine.domain_events

(* ---------------------------------------------------------------- *)
(* agreement with the profiler: the zero-lock what-if removes exactly
   the picoseconds the mutex contention table reports *)

let test_zero_lock_matches_profiler () =
  let program =
    parse (Filename.concat (data_dir "examples/c") "locked_counter.c")
  in
  let cp = Scc.Critpath.create () in
  let profile = Scc.Profile.create () in
  let _r = Cexec.Interp.run_pthread ~profile ~critpath:cp program in
  let profiler_wait =
    List.fold_left
      (fun acc (row : Scc.Profile.lock_row) ->
        acc + row.Scc.Profile.lk_wait_ps)
      0 (Scc.Profile.locks profile)
  in
  Alcotest.(check bool) "the workload contends" true (profiler_wait > 0);
  let accounted =
    (Scc.Critpath.account_totals cp).(Scc.Critpath.cat_lock_wait)
  in
  Alcotest.(check int) "lock-wait account == profiler lock table"
    profiler_wait accounted;
  let wi =
    List.find
      (fun (w : Scc.Critpath.whatif) ->
        w.Scc.Critpath.wi_name = "zero-lock-wait")
      (Scc.Critpath.whatifs cp)
  in
  (* exact here; the acceptance bar is "within 1%" *)
  Alcotest.(check int) "zero-lock what-if removes the same ps"
    profiler_wait wi.Scc.Critpath.wi_removed_ps;
  Alcotest.(check bool) "identity still holds under profiling" true
    (Scc.Critpath.identity_ok cp)

(* ---------------------------------------------------------------- *)
(* naive vs -O: the shared-DRAM stall category collapses *)

let test_opt_shared_collapse () =
  let program =
    parse_src ~file:"hot_loop.c" (Exp.Csrc.hot_loop ~nt:8 ~steps:4096)
  in
  let run optimize =
    let cp = Scc.Critpath.create () in
    let r =
      Cexec.Interp.run_rcce ~critpath:cp ~ncores:8
        (translate ~ncores:8 ~optimize program)
    in
    (cp, Scc.Stats.total_shared_dram_loads
           (Scc.Engine.stats r.Cexec.Interp.engine))
  in
  let naive_cp, naive_loads = run false in
  let opt_cp, opt_loads = run true in
  Alcotest.(check bool) "identity holds, naive" true
    (Scc.Critpath.identity_ok naive_cp);
  Alcotest.(check bool) "identity holds, -O" true
    (Scc.Critpath.identity_ok opt_cp);
  let shared cp =
    (Scc.Critpath.account_totals cp).(Scc.Critpath.cat_mem_shared)
  in
  (* the PR 7 collapse (65560 -> 32 shared loads at this scale) must
     show up in the --explain accounting, not just the stats counter *)
  Alcotest.(check bool) "shared loads collapse >100x" true
    (naive_loads > 100 * opt_loads);
  Alcotest.(check bool) "shared-DRAM stall ps collapse >10x" true
    (shared naive_cp > 10 * shared opt_cp);
  let ceiling cp name =
    (List.find
       (fun (w : Scc.Critpath.whatif) -> w.Scc.Critpath.wi_name = name)
       (Scc.Critpath.whatifs cp))
      .Scc.Critpath.wi_ceiling
  in
  Alcotest.(check bool)
    "mpb-speed-shared ceiling is larger before the optimizer" true
    (ceiling naive_cp "mpb-speed-shared" >= ceiling opt_cp "mpb-speed-shared")

(* ---------------------------------------------------------------- *)
(* Perfetto flows stay well-formed when the trace buffer truncates *)

let check_flow_chain flows =
  let phases =
    List.map
      (function
        | Obs.Chrome.Flow { phase; _ } -> phase
        | _ -> Alcotest.fail "non-flow event in the chain")
      flows
  in
  match phases with
  | [] -> ()
  | [ _ ] -> Alcotest.fail "dangling single-event flow"
  | first :: rest ->
      Alcotest.(check bool) "chain starts with s" true
        (first = Obs.Chrome.Flow_start);
      let rec middle = function
        | [] -> Alcotest.fail "unreachable"
        | [ last ] ->
            Alcotest.(check bool) "chain ends with f" true
              (last = Obs.Chrome.Flow_end)
        | p :: tl ->
            Alcotest.(check bool) "interior events are t" true
              (p = Obs.Chrome.Flow_step);
            middle tl
      in
      middle rest;
      let ids =
        List.filter_map
          (function Obs.Chrome.Flow { id; _ } -> Some id | _ -> None)
          flows
      in
      List.iter
        (fun id -> Alcotest.(check int) "one flow id" (List.hd ids) id)
        ids

let test_flow_truncation () =
  let program = parse (Filename.concat (data_dir "examples/c") "hot_loop.c") in
  let translated = translate ~ncores:8 ~optimize:false program in
  let trace = Scc.Trace.create ~limit:64 () in
  let cp = Scc.Critpath.create () in
  ignore (Cexec.Interp.run_rcce ~trace ~critpath:cp ~ncores:8 translated);
  Alcotest.(check bool) "the trace truncated" true
    (Scc.Trace.dropped trace > 0);
  let horizon = Scc.Trace.max_end_ps trace in
  let flows = Scc.Critpath.flow_events ~max_end_ps:horizon cp in
  check_flow_chain flows;
  List.iter
    (function
      | Obs.Chrome.Flow { ts_us; _ } ->
          Alcotest.(check bool) "flow inside the retained window" true
            (ts_us <= (float_of_int horizon /. 1e6) +. 1e-9)
      | _ -> ())
    flows;
  (* unclipped, the chain is well-formed too *)
  check_flow_chain (Scc.Critpath.flow_events cp)

(* ---------------------------------------------------------------- *)
(* critical path sanity on a bare engine run *)

let test_path_sanity () =
  let cp = Scc.Critpath.create () in
  let eng = Scc.Engine.create ~critpath:cp () in
  let addr =
    Scc.Memmap.alloc (Scc.Engine.memmap eng) (Scc.Memmap.Private 0) ~bytes:256
  in
  ignore
    (Scc.Engine.spawn eng ~core:0 (fun api ->
         for i = 0 to 63 do
           api.Scc.Engine.compute 20;
           api.Scc.Engine.load (addr + (i mod 16 * 4)) ~bytes:4
         done));
  Scc.Engine.run eng;
  Alcotest.(check bool) "identity" true (Scc.Critpath.identity_ok cp);
  let path = Scc.Critpath.critical_path cp in
  Alcotest.(check bool) "path is non-empty" true (path <> []);
  let span = Scc.Critpath.path_span path in
  Alcotest.(check bool) "span within the wall" true
    (span > 0 && span <= Scc.Critpath.wall_ps cp);
  let by_cat, _ = Scc.Critpath.path_by_category path in
  Alcotest.(check int) "per-category path ps re-sum to the span" span
    (Array.fold_left ( + ) 0 by_cat);
  (* single context, one core: no scheduler wait on the path *)
  Alcotest.(check int) "no sched-wait for a lone context" 0
    by_cat.(Scc.Critpath.cat_sched_wait)

(* ---------------------------------------------------------------- *)
(* report surfaces *)

let test_render_and_json () =
  let program =
    parse (Filename.concat (data_dir "examples/c") "locked_counter.c")
  in
  let cp = Scc.Critpath.create () in
  let profile = Scc.Profile.create () in
  ignore (Cexec.Interp.run_pthread ~profile ~critpath:cp program);
  let rendered = Scc.Critpath.render ~profile cp in
  Alcotest.(check bool) "render reports the identity" true
    (contains rendered "identity holds");
  Alcotest.(check bool) "render names a C function" true
    (contains rendered "work");
  Alcotest.(check bool) "render has the what-if table" true
    (contains rendered "zero-lock-wait");
  let json = Scc.Critpath.to_json ~profile cp in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (contains json needle))
    [ {|"identity"|}; {|"ok": true|}; {|"critical_path"|}; {|"whatif"|};
      {|"category": "lock-wait"|}; {|"lookahead"|} ]

(* the engine publishes the account as labelled Prometheus counters, and
   the partition counters use the labelled family too *)
let test_registry_metrics () =
  let program = parse (Filename.concat (data_dir "examples/c") "hot_loop.c") in
  let translated = translate ~ncores:8 ~optimize:false program in
  let cp = Scc.Critpath.create () in
  let profile = Scc.Profile.create () in
  ignore
    (Cexec.Interp.run_rcce ~profile ~critpath:cp ~sim_jobs:4 ~ncores:8
       translated);
  let text = Obs.Registry.to_prometheus (Scc.Profile.registry profile) in
  Alcotest.(check bool) "account family present" true
    (contains text {|sim_account_ps_total{category="compute"}|});
  Alcotest.(check bool) "partition family labelled" true
    (contains text {|sim_domain_events_total{partition="0"}|});
  Alcotest.(check bool) "old name-embedded partition counters are gone"
    false
    (contains text "sim_domain_events_part")

let suite =
  [
    Alcotest.test_case "identity: hot_loop on 8 cores" `Quick
      test_identity_hot_loop;
    Alcotest.test_case "identity across sim_jobs" `Quick
      test_identity_across_sim_jobs;
    Alcotest.test_case "LBTS window accounting" `Quick
      test_par_report_accounting;
    Alcotest.test_case "zero-lock what-if == profiler lock table" `Quick
      test_zero_lock_matches_profiler;
    Alcotest.test_case "naive vs -O: shared stalls collapse" `Quick
      test_opt_shared_collapse;
    Alcotest.test_case "flows well-formed under truncation" `Quick
      test_flow_truncation;
    Alcotest.test_case "critical path sanity" `Quick test_path_sanity;
    Alcotest.test_case "render + json" `Quick test_render_and_json;
    Alcotest.test_case "registry metrics" `Quick test_registry_metrics;
  ]
