open Cfront

(* The diagnostics engine: golden renderer strings, counting, sorting,
   and the -Werror exit-code semantics. *)

let loc file line col = { Srcloc.file; line; col }

let race_warning =
  Diag.warning
    ~loc:(loc "a.c" 13 9)
    ~related:
      [ Diag.related_note ~loc:(loc "a.c" 21 5) "conflicting read here" ]
    ~code:"race" "data race on 'counter'"

(* --- gcc renderer ---------------------------------------------------------- *)

let test_gcc_golden () =
  Alcotest.(check string) "warning with related note"
    "a.c:13:9: warning: data race on 'counter' [race]\n\
     a.c:21:5: note: conflicting read here"
    (Diag.to_gcc_string race_warning)

let test_gcc_no_loc () =
  Alcotest.(check string) "location-free diagnostic"
    "error: out of cores [cores]"
    (Diag.to_gcc_string (Diag.error ~code:"cores" "out of cores"))

(* --- JSON renderer --------------------------------------------------------- *)

let test_json_golden () =
  Alcotest.(check string) "full object"
    {|{"severity":"warning","code":"race","loc":{"file":"a.c","line":13,"col":9},"message":"data race on 'counter'","related":[{"loc":{"file":"a.c","line":21,"col":5},"message":"conflicting read here"}]}|}
    (Diag.to_json_string race_warning)

let test_json_escaping () =
  Alcotest.(check string) "quotes, backslashes and newlines escaped"
    {|{"severity":"note","code":"c","loc":null,"message":"a \"b\"\\\n","related":[]}|}
    (Diag.to_json_string (Diag.note ~code:"c" "a \"b\"\\\n"))

let test_json_batch_is_array () =
  Alcotest.(check string) "render_all Json wraps one array"
    {|[{"severity":"error","code":"x","loc":null,"message":"m","related":[]}]|}
    (Diag.render_all Diag.Json [ Diag.error ~code:"x" "m" ])

(* --- sorting, counting, summaries ------------------------------------------ *)

let test_sort_by_severity_then_loc () =
  let n = Diag.note ~code:"n" "n" in
  let w1 = Diag.warning ~loc:(loc "a.c" 2 1) ~code:"w" "w1" in
  let w2 = Diag.warning ~loc:(loc "a.c" 9 1) ~code:"w" "w2" in
  let e = Diag.error ~loc:(loc "z.c" 1 1) ~code:"e" "e" in
  Alcotest.(check (list string)) "errors, warnings by loc, notes"
    [ "e"; "w1"; "w2"; "n" ]
    (List.map (fun d -> d.Diag.message) (Diag.sort [ n; w2; e; w1 ]))

let test_count_and_summary () =
  let diags =
    [ race_warning; Diag.warning ~code:"race" "w2"; Diag.error ~code:"e" "e" ]
  in
  let c = Diag.count diags in
  Alcotest.(check (list int)) "counts" [ 1; 2; 0 ]
    [ c.Diag.errors; c.Diag.warnings; c.Diag.notes ];
  Alcotest.(check string) "plural summary" "2 warnings and 1 error generated"
    (Diag.summary diags);
  Alcotest.(check string) "singular summary" "1 warning generated"
    (Diag.summary [ race_warning ]);
  Alcotest.(check string) "empty summary" "no diagnostics generated"
    (Diag.summary [])

(* --- -Werror --------------------------------------------------------------- *)

let test_promote_warnings () =
  let promoted = Diag.promote_warnings [ race_warning; Diag.note ~code:"n" "n" ] in
  Alcotest.(check (list string)) "warning becomes error, note survives"
    [ "error"; "note" ]
    (List.map (fun d -> Diag.severity_to_string d.Diag.severity) promoted)

let test_exit_codes () =
  Alcotest.(check int) "clean" 0 (Diag.exit_code []);
  Alcotest.(check int) "warnings pass" 0 (Diag.exit_code [ race_warning ]);
  Alcotest.(check int) "warnings fail under -Werror" 1
    (Diag.exit_code ~werror:true [ race_warning ]);
  Alcotest.(check int) "errors always fail" 1
    (Diag.exit_code [ Diag.error ~code:"e" "e" ])

let test_format_of_string () =
  Alcotest.(check bool) "gcc" true (Diag.format_of_string "gcc" = Some Diag.Gcc);
  Alcotest.(check bool) "text alias" true
    (Diag.format_of_string "text" = Some Diag.Gcc);
  Alcotest.(check bool) "json" true
    (Diag.format_of_string "json" = Some Diag.Json);
  Alcotest.(check bool) "unknown" true (Diag.format_of_string "xml" = None)

(* emit = sort + promote + print + exit code, in one call *)
let emit_to_string ?format ?werror diags =
  let path = Filename.temp_file "diag" ".out" in
  let oc = open_out path in
  let status = Diag.emit ?format ?werror oc diags in
  close_out oc;
  let ic = open_in_bin path in
  let out =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove path)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (status, out)

let test_emit_golden () =
  let status, out = emit_to_string ~werror:true [ race_warning ] in
  Alcotest.(check int) "-Werror exit code through emit" 1 status;
  Alcotest.(check string) "promoted and newline-terminated"
    "a.c:13:9: error: data race on 'counter' [race]\n\
     a.c:21:5: note: conflicting read here\n"
    out

let test_emit_empty_prints_nothing () =
  let status, out = emit_to_string [] in
  Alcotest.(check int) "clean exit" 0 status;
  Alcotest.(check string) "no output" "" out

let suite =
  [
    Alcotest.test_case "gcc golden" `Quick test_gcc_golden;
    Alcotest.test_case "gcc without loc" `Quick test_gcc_no_loc;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json batch array" `Quick test_json_batch_is_array;
    Alcotest.test_case "sort order" `Quick test_sort_by_severity_then_loc;
    Alcotest.test_case "count and summary" `Quick test_count_and_summary;
    Alcotest.test_case "promote warnings" `Quick test_promote_warnings;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "format of string" `Quick test_format_of_string;
    Alcotest.test_case "emit golden" `Quick test_emit_golden;
    Alcotest.test_case "emit empty" `Quick test_emit_empty_prints_nothing;
  ]
