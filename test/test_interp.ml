open Cfront

(* The C interpreter: expression and statement semantics, pointers,
   functions, pthreads, RCCE programs, and the end-to-end equivalence of
   original vs translated benchmarks. *)

let run_main ?cfg src =
  Cexec.Interp.run_pthread ?cfg (Parser.program ~file:"t.c" src)

let output src = (run_main src).Cexec.Interp.output

let check_output msg src expected =
  Alcotest.(check string) msg expected (output src)

let exit_value src =
  match (run_main src).Cexec.Interp.exit_values with
  | [ v ] -> Cexec.Value.as_int v
  | _ -> Alcotest.fail "expected one exit value"

let check_exit msg src expected =
  Alcotest.(check int) msg expected (exit_value src)

(* --- expressions ------------------------------------------------------------ *)

let test_arithmetic () =
  check_exit "precedence" "int main() { return 2 + 3 * 4; }" 14;
  check_exit "division truncates" "int main() { return 7 / 2; }" 3;
  check_exit "modulo" "int main() { return 17 % 5; }" 2;
  check_exit "unary minus" "int main() { return -(3 - 5); }" 2;
  check_exit "bitwise" "int main() { return (6 & 3) | (1 << 4); }" 18;
  check_exit "comparison yields 0/1" "int main() { return (3 < 5) + (5 < 3); }" 1;
  check_exit "logical not" "int main() { return !0 + !7; }" 1;
  check_exit "ternary" "int main() { return 1 ? 10 : 20; }" 10

let test_floats () =
  check_output "float arithmetic"
    {|int main() { double x = 1.5; double y = x * 4.0 + 0.25; printf("%f\n", y); return 0; }|}
    "6.250000\n";
  check_exit "int/float conversion" "int main() { double d = 7.9; return (int)d; }" 7;
  check_exit "mixed promotes" "int main() { return (int)(1 / 2.0 * 8.0); }" 4

let test_short_circuit () =
  (* the second operand must not be evaluated (it would divide by zero) *)
  check_exit "&& short-circuits" "int main() { int z = 0; return 0 && (1 / z); }" 0;
  check_exit "|| short-circuits" "int main() { int z = 0; return 1 || (1 / z); }" 1

let test_compound_assignment () =
  check_exit "+= and *=" "int main() { int a = 3; a += 4; a *= 2; return a; }" 14;
  check_exit "pre/post increment"
    "int main() { int a = 5; int b = a++; int c = ++a; return b * 10 + c; }" 57

let test_division_by_zero () =
  match run_main "int main() { int z = 0; return 1 / z; }" with
  | _ -> Alcotest.fail "division by zero should raise"
  | exception Cexec.Value.Type_error _ -> ()

(* --- control flow ------------------------------------------------------------- *)

let test_loops () =
  check_exit "for loop sum"
    "int main() { int s = 0; int i; for (i = 1; i <= 10; i++) { s += i; } return s; }"
    55;
  check_exit "while with break"
    {|int main() {
        int i = 0;
        while (1) { if (i == 7) break; i++; }
        return i;
      }|}
    7;
  check_exit "continue skips"
    {|int main() {
        int s = 0; int i;
        for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; }
        return s;
      }|}
    20;
  check_exit "do-while runs once"
    "int main() { int i = 100; do { i++; } while (i < 5); return i; }" 101

let test_nested_control () =
  check_exit "nested loops"
    {|int main() {
        int total = 0; int i; int j;
        for (i = 0; i < 5; i++) {
          for (j = 0; j < 5; j++) {
            if (j > i) break;
            total++;
          }
        }
        return total;
      }|}
    15

(* --- pointers and arrays --------------------------------------------------- *)

let test_pointers () =
  check_exit "address and deref"
    "int main() { int x = 5; int *p = &x; *p = 9; return x; }" 9;
  check_exit "pointer arithmetic"
    {|int main() {
        int a[4];
        int *p = a;
        *(p + 2) = 42;
        return a[2];
      }|}
    42;
  check_exit "array indexing"
    {|int main() {
        int a[8]; int i;
        for (i = 0; i < 8; i++) { a[i] = i * i; }
        return a[5];
      }|}
    25;
  check_exit "pointer into array element"
    {|int main() {
        int a[3]; a[1] = 7;
        int *p = &a[1];
        return *p;
      }|}
    7

let test_global_state () =
  check_exit "globals initialized"
    "int g = 42;\nint main() { return g; }" 42;
  check_exit "global array initializer"
    "int a[3] = {5, 6, 7};\nint main() { return a[0] + a[1] + a[2]; }" 18;
  check_exit "global default zero" "int z;\nint main() { return z; }" 0

let test_functions () =
  check_exit "call and return"
    "int add(int a, int b) { return a + b; }\nint main() { return add(3, 4); }"
    7;
  check_exit "recursion"
    {|int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
      int main() { return fib(10); }|}
    55;
  check_exit "pointer argument mutates"
    {|void bump(int *p) { *p = *p + 1; }
      int main() { int x = 10; bump(&x); bump(&x); return x; }|}
    12;
  check_exit "locals are per call"
    {|int f(int n) { int local = n * 2; return local; }
      int main() { return f(1) + f(2); }|}
    6

let test_printf () =
  check_output "int formatting"
    {|int main() { printf("a=%d b=%d\n", 1, 2 + 3); return 0; }|}
    "a=1 b=5\n";
  check_output "percent escape" {|int main() { printf("100%%\n"); return 0; }|}
    "100%\n";
  check_output "char" {|int main() { printf("%c%c\n", 104, 105); return 0; }|}
    "hi\n"

let test_null_dereference_reported () =
  (match run_main "int main() { int *p = NULL; return *p; }" with
  | _ -> Alcotest.fail "null read should raise"
  | exception Cexec.Interp.Runtime_error msg ->
      Alcotest.(check bool) "mentions null" true
        (let needle = "null pointer" in
         let n = String.length needle and m = String.length msg in
         let rec scan i =
           i + n <= m && (String.sub msg i n = needle || scan (i + 1))
         in
         scan 0));
  match run_main "int main() { int *p = NULL; *p = 1; return 0; }" with
  | _ -> Alcotest.fail "null write should raise"
  | exception Cexec.Interp.Runtime_error _ -> ()

let test_unbound_variable_reported () =
  match run_main "int main() { return nosuch; }" with
  | _ -> Alcotest.fail "unbound variable should raise"
  | exception Cexec.Interp.Runtime_error _ -> ()

let test_unknown_function_reported () =
  match run_main "int main() { return mystery(1); }" with
  | _ -> Alcotest.fail "unknown function should raise"
  | exception Cexec.Interp.Runtime_error _ -> ()

(* --- pthread programs ----------------------------------------------------- *)

let test_pthread_example_4_1 () =
  let r = Cexec.Interp.run_pthread (Exp.Example41.parse ()) in
  Alcotest.(check string) "the paper's example output"
    "Sum Array: 1\nSum Array: 2\nSum Array: 3\n" r.Cexec.Interp.output

let test_pthread_mutex_counter () =
  let src = Exp.Csrc.mutex_counter ~nt:4 ~iters:25 in
  let r = Cexec.Interp.run_pthread (Parser.program src) in
  Alcotest.(check string) "all increments counted" "counter = 100\n"
    r.Cexec.Interp.output

(* Regression for the hashed sync-object tables: with dozens of distinct
   mutexes the old association-list lookup went quadratic; this pins the
   behaviour (every lock distinct, all increments counted, repeat runs
   cycle-identical). *)
let test_many_mutexes () =
  let n = 64 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#include <pthread.h>\nint counter;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "pthread_mutex_t m%d;\n" i)
  done;
  Buffer.add_string buf "void *worker(void *arg) {\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "  pthread_mutex_lock(&m%d);\n\
         \  counter = counter + 1;\n\
         \  pthread_mutex_unlock(&m%d);\n"
         i i)
  done;
  Buffer.add_string buf "  return NULL;\n}\n";
  Buffer.add_string buf
    {|int main() {
        pthread_t t[4];
        int i;
        for (i = 0; i < 4; i++) pthread_create(&t[i], NULL, worker, NULL);
        for (i = 0; i < 4; i++) pthread_join(t[i], NULL);
        printf("%d\n", counter);
        return 0;
      }|};
  let src = Buffer.contents buf in
  let a = run_main src in
  let b = run_main src in
  Alcotest.(check string) "all increments counted" "256\n"
    a.Cexec.Interp.output;
  Alcotest.(check string) "output deterministic" a.Cexec.Interp.output
    b.Cexec.Interp.output;
  Alcotest.(check int) "cycle-identical" a.Cexec.Interp.elapsed_ps
    b.Cexec.Interp.elapsed_ps

let test_pthread_threads_share_globals () =
  check_output "threads see each other's writes"
    {|#include <pthread.h>
      #include <stdio.h>
      int x;
      void *w(void *a) { x = x + 10; pthread_exit(NULL); }
      int main() {
        pthread_t t;
        x = 5;
        pthread_create(&t, NULL, w, NULL);
        pthread_join(t, NULL);
        printf("%d\n", x);
        return 0;
      }|}
    "15\n"

(* --- RCCE programs ----------------------------------------------------------- *)

let run_rcce ~ncores src =
  Cexec.Interp.run_rcce ~ncores (Parser.program ~file:"t.c" src)

let test_rcce_ue_and_shared () =
  let r =
    run_rcce ~ncores:4
      {|#include <stdio.h>
        int *cells;
        int RCCE_APP(int argc, char **argv) {
          RCCE_init(&argc, &argv);
          cells = (int*)RCCE_shmalloc(sizeof(int) * 4);
          int me;
          me = RCCE_ue();
          cells[me] = me * me;
          RCCE_barrier(&RCCE_COMM_WORLD);
          if (me == 0) {
            int i;
            int total = 0;
            for (i = 0; i < 4; i++) { total = total + cells[i]; }
            printf("total = %d\n", total);
          }
          RCCE_finalize();
          return 0;
        }|}
  in
  Alcotest.(check string) "shared cells summed" "total = 14\n"
    r.Cexec.Interp.output

let test_rcce_globals_are_private () =
  (* each process has its own copy of an ordinary global *)
  let r =
    run_rcce ~ncores:3
      {|#include <stdio.h>
        int mine;
        int RCCE_APP(int argc, char **argv) {
          RCCE_init(&argc, &argv);
          mine = RCCE_ue() + 1;
          RCCE_barrier(&RCCE_COMM_WORLD);
          printf("%d", mine);
          RCCE_finalize();
          return 0;
        }|}
  in
  (* each prints its own value; order is simulation order but the
     multiset must be {1,2,3} *)
  let sorted =
    r.Cexec.Interp.output |> String.to_seq |> List.of_seq
    |> List.sort compare |> List.to_seq |> String.of_seq
  in
  Alcotest.(check string) "private globals" "123" sorted

let test_rcce_locks () =
  let r =
    run_rcce ~ncores:4
      {|#include <stdio.h>
        int *counter;
        int RCCE_APP(int argc, char **argv) {
          RCCE_init(&argc, &argv);
          counter = (int*)RCCE_shmalloc(sizeof(int) * 1);
          int i;
          for (i = 0; i < 10; i++) {
            RCCE_acquire_lock(0);
            *counter = *counter + 1;
            RCCE_release_lock(0);
          }
          RCCE_barrier(&RCCE_COMM_WORLD);
          if (RCCE_ue() == 0) { printf("%d\n", *counter); }
          RCCE_finalize();
          return 0;
        }|}
  in
  Alcotest.(check string) "lock-protected count" "40\n" r.Cexec.Interp.output

let test_rcce_mpb_malloc () =
  let r =
    run_rcce ~ncores:2
      {|#include <stdio.h>
        int *fast;
        int RCCE_APP(int argc, char **argv) {
          RCCE_init(&argc, &argv);
          fast = (int*)RCCE_malloc(sizeof(int) * 2);
          fast[RCCE_ue()] = 7 + RCCE_ue();
          RCCE_barrier(&RCCE_COMM_WORLD);
          if (RCCE_ue() == 1) { printf("%d %d\n", fast[0], fast[1]); }
          RCCE_finalize();
          return 0;
        }|}
  in
  Alcotest.(check string) "on-chip shared data" "7 8\n" r.Cexec.Interp.output

let test_translated_on_chip_placement_runs () =
  (* translate with on-chip capacity: the output allocates with
     RCCE_malloc, and the interpreter serves it from the simulated MPB
     with the same results *)
  let program = Exp.Example41.parse () in
  let options =
    { Translate.Pass.default_options with Translate.Pass.capacity = 8192 }
  in
  let translated, _ =
    Translate.Driver.translate_program ~options program
  in
  let text = Pretty.program translated in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec scan i = i + n <= m && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "uses the on-chip allocator" true
    (contains "RCCE_malloc");
  let r = Cexec.Interp.run_rcce ~ncores:3 translated in
  Alcotest.(check string) "same sums from the MPB"
    "Sum Array: 1
Sum Array: 2
Sum Array: 3
" r.Cexec.Interp.output;
  (* and the traffic really went to the MPB *)
  let stats = Scc.Engine.stats r.Cexec.Interp.engine in
  Alcotest.(check bool) "MPB lines touched" true
    (Scc.Stats.total_mpb_lines stats > 0)

(* --- end-to-end: original vs translated --------------------------------------- *)

let end_to_end src ~nt =
  let program = Parser.program ~file:"e2e.c" src in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ = Translate.Driver.translate_program program in
  let converted = Cexec.Interp.run_rcce ~ncores:nt translated in
  (original, converted)

let test_end_to_end_pi () =
  let original, converted = end_to_end (Exp.Csrc.pi ~nt:8 ~steps:4096) ~nt:8 in
  (* every process prints the same final value as the original *)
  let expected = String.trim original.Cexec.Interp.output in
  Alcotest.(check bool) "original printed pi" true
    (String.length expected > 0);
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line -> Alcotest.(check string) "same pi" expected line);
  Alcotest.(check bool) "converted is faster" true
    (converted.Cexec.Interp.elapsed_ps < original.Cexec.Interp.elapsed_ps)

let test_end_to_end_primes () =
  let original, converted =
    end_to_end (Exp.Csrc.primes ~nt:4 ~limit:400) ~nt:4
  in
  let expected = String.trim original.Cexec.Interp.output in
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line ->
         Alcotest.(check string) "same prime count" expected line)

let test_end_to_end_mutex () =
  let original, converted =
    end_to_end (Exp.Csrc.mutex_counter ~nt:4 ~iters:10) ~nt:4
  in
  Alcotest.(check string) "original counted" "counter = 40"
    (String.trim original.Cexec.Interp.output);
  String.split_on_char '\n' (String.trim converted.Cexec.Interp.output)
  |> List.iter (fun line ->
         Alcotest.(check string) "same count" "counter = 40" line)

let test_end_to_end_example () =
  let program = Exp.Example41.parse () in
  let original = Cexec.Interp.run_pthread program in
  let translated, _ = Translate.Driver.translate_program program in
  let converted = Cexec.Interp.run_rcce ~ncores:3 translated in
  Alcotest.(check string) "same output as the original"
    original.Cexec.Interp.output converted.Cexec.Interp.output

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "compound assignment" `Quick test_compound_assignment;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "loops" `Quick test_loops;
    Alcotest.test_case "nested control" `Quick test_nested_control;
    Alcotest.test_case "pointers" `Quick test_pointers;
    Alcotest.test_case "globals" `Quick test_global_state;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "printf" `Quick test_printf;
    Alcotest.test_case "null dereference" `Quick
      test_null_dereference_reported;
    Alcotest.test_case "unbound variable" `Quick
      test_unbound_variable_reported;
    Alcotest.test_case "unknown function" `Quick
      test_unknown_function_reported;
    Alcotest.test_case "pthread example 4.1" `Quick test_pthread_example_4_1;
    Alcotest.test_case "pthread mutex counter" `Quick
      test_pthread_mutex_counter;
    Alcotest.test_case "threads share globals" `Quick
      test_pthread_threads_share_globals;
    Alcotest.test_case "many mutexes" `Quick test_many_mutexes;
    Alcotest.test_case "rcce ue and shared" `Quick test_rcce_ue_and_shared;
    Alcotest.test_case "rcce private globals" `Quick
      test_rcce_globals_are_private;
    Alcotest.test_case "rcce locks" `Quick test_rcce_locks;
    Alcotest.test_case "rcce MPB malloc" `Quick test_rcce_mpb_malloc;
    Alcotest.test_case "translated on-chip placement" `Quick
      test_translated_on_chip_placement_runs;
    Alcotest.test_case "end-to-end pi" `Quick test_end_to_end_pi;
    Alcotest.test_case "end-to-end primes" `Quick test_end_to_end_primes;
    Alcotest.test_case "end-to-end mutex" `Quick test_end_to_end_mutex;
    Alcotest.test_case "end-to-end example 4.1" `Quick
      test_end_to_end_example;
  ]
