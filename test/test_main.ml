(* Test runner: one suite per library area. *)

let () =
  Alcotest.run "hsmc"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("preproc", Test_preproc.suite);
      ("ctype", Test_ctype.suite);
      ("visit", Test_visit.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("partition", Test_partition.suite);
      ("translate", Test_translate.suite);
      ("session", Test_session.suite);
      ("scc", Test_scc.suite);
      ("rcce", Test_rcce.suite);
      ("workloads", Test_workloads.suite);
      ("interp", Test_interp.suite);
      ("exp", Test_exp.suite);
      ("extensions", Test_extensions.suite);
      ("lockset", Test_lockset.suite);
      ("diag", Test_diag.suite);
      ("race", Test_race.suite);
      ("absint", Test_absint.suite);
      ("optimize", Test_optimize.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("csrc-suite", Test_csrc_suite.suite);
      ("sweep", Test_sweep.suite);
      ("fuzz", Test_fuzz.suite);
      ("conform", Test_conform.suite);
      ("opt", Test_opt.suite);
      ("modes", Test_modes.suite);
      ("critpath", Test_critpath.suite);
      ("synth", Test_synth.suite);
    ]
