(* Differential tests for the two execution-core refactors: the
   closure-compiled interpreter against the tree-walking reference, and
   the partitioned (conservative parallel DES) scheduler against the
   sequential one.  Every configuration must produce byte-identical
   output, exit codes and final picosecond times — the compiled mode
   and the partitioning are pure speed, never semantics. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let data_dir name =
  if Sys.file_exists ("../" ^ name) then "../" ^ name else name

let c_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".c")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let parse path =
  Cfront.Parser.program ~file:path (read_file path)

let exit_strings r =
  List.map Cexec.Value.to_string r.Cexec.Interp.exit_values

(* Assert two runs of the same program are observationally identical:
   printf stream (hence OBS lines), per-process exit values, and the
   final simulated time. *)
let check_same ~what ~file a b =
  Alcotest.(check string)
    (Printf.sprintf "%s: %s output" file what)
    a.Cexec.Interp.output b.Cexec.Interp.output;
  Alcotest.(check (list string))
    (Printf.sprintf "%s: %s exit values" file what)
    (exit_strings a) (exit_strings b);
  Alcotest.(check int)
    (Printf.sprintf "%s: %s elapsed ps" file what)
    a.Cexec.Interp.elapsed_ps b.Cexec.Interp.elapsed_ps

(* The full checked-in conformance corpus, Pthread side: tree-walked,
   compiled, and compiled under a partitioned scheduler must agree. *)
let test_corpus_modes () =
  let dir = data_dir "test/conformance" in
  let dir = if Sys.file_exists dir then dir else "conformance" in
  let files = c_files dir in
  Alcotest.(check bool) "corpus has at least 10 programs" true
    (List.length files >= 10);
  List.iter
    (fun file ->
      let program = parse file in
      let tree = Cexec.Interp.run_pthread ~interp:Cexec.Interp.Tree program in
      let compiled =
        Cexec.Interp.run_pthread ~interp:Cexec.Interp.Compiled program
      in
      let parts =
        Cexec.Interp.run_pthread ~interp:Cexec.Interp.Compiled ~sim_jobs:8
          program
      in
      check_same ~what:"tree vs compiled" ~file tree compiled;
      check_same ~what:"sequential vs partitioned" ~file compiled parts)
    files

(* The example programs ride along: they use mutexes and racy updates
   the generator does not emit. *)
let test_examples_modes () =
  let files = c_files (data_dir "examples/c") in
  Alcotest.(check bool) "at least 3 examples" true (List.length files >= 3);
  List.iter
    (fun file ->
      let program = parse file in
      let tree = Cexec.Interp.run_pthread ~interp:Cexec.Interp.Tree program in
      let compiled =
        Cexec.Interp.run_pthread ~interp:Cexec.Interp.Compiled ~sim_jobs:4
          program
      in
      check_same ~what:"tree/seq vs compiled/partitioned" ~file tree compiled)
    files

(* RCCE side: the translated corpus programs run on many cores, where
   the partitions actually split the mesh.  Each file carries its own
   run configuration in its [// conform-*] header; only files expected
   to agree are translatable-and-runnable by construction. *)
let test_translated_modes () =
  let dir = data_dir "test/conformance" in
  let dir = if Sys.file_exists dir then dir else "conformance" in
  let checked = ref 0 in
  List.iter
    (fun file ->
      let contents = read_file file in
      match Conform.Harness.parse_directives contents with
      | Error e -> Alcotest.failf "%s: %s" file e
      | Ok d when d.Conform.Harness.d_expect <> Conform.Harness.Expect_agree
        ->
          ()
      | Ok d ->
          let ncores = d.Conform.Harness.d_cores in
          let cfg =
            {
              (Conform.Oracle.default_config ~ncores) with
              Conform.Oracle.options =
                {
                  Translate.Pass.default_options with
                  Translate.Pass.ncores;
                  many_to_one = d.Conform.Harness.d_many_to_one;
                  optimize = d.Conform.Harness.d_optimize;
                };
            }
          in
          let translated = Conform.Oracle.translate cfg (parse file) in
          let tree =
            Cexec.Interp.run_rcce ~interp:Cexec.Interp.Tree ~ncores
              translated
          in
          let parts =
            Cexec.Interp.run_rcce ~interp:Cexec.Interp.Compiled ~sim_jobs:8
              ~ncores translated
          in
          incr checked;
          check_same ~what:"rcce tree/seq vs compiled/partitioned" ~file
            tree parts)
    (c_files dir);
  Alcotest.(check bool) "checked several translated programs" true
    (!checked >= 5)

(* The oracle itself accepts the mode knobs: a fresh generated program
   must Agree under every combination. *)
let test_oracle_modes () =
  let spec, program = Conform.Gen.generate ~seed:9001 in
  let base = Conform.Oracle.config_of_spec spec in
  List.iter
    (fun (interp, sim_jobs) ->
      let cfg = { base with Conform.Oracle.interp; sim_jobs } in
      match Conform.Oracle.check cfg program with
      | Conform.Oracle.Agree -> ()
      | Conform.Oracle.Diverge f ->
          Alcotest.failf "jobs=%d: %s" sim_jobs
            (Conform.Oracle.failure_to_string f))
    [
      (Cexec.Interp.Tree, 1);
      (Cexec.Interp.Compiled, 1);
      (Cexec.Interp.Compiled, 6);
      (Cexec.Interp.Tree, 6);
    ]

(* Partition accounting: per-domain event counters sum to the total
   event count, and the LBTS report is sane. *)
let test_partition_counters () =
  let src = Exp.Csrc.pi ~nt:8 ~steps:512 in
  let program = Cfront.Parser.program ~file:"pi.c" src in
  let translated, _ = Translate.Driver.translate_program program in
  let r = Cexec.Interp.run_rcce ~sim_jobs:8 ~ncores:8 translated in
  let eng = r.Cexec.Interp.engine in
  Alcotest.(check int) "8 partitions" 8 (Scc.Engine.n_partitions eng);
  let per_part = Scc.Engine.partition_events eng in
  Alcotest.(check int) "partition events sum to total"
    (Scc.Engine.events eng)
    (Array.fold_left ( + ) 0 per_part);
  let stats = Scc.Engine.stats eng in
  Alcotest.(check (list int)) "stats carry the same per-domain counters"
    (Array.to_list per_part)
    (Array.to_list stats.Scc.Stats.domain_events);
  let rep = Scc.Engine.par_report eng in
  Alcotest.(check bool) "lookahead positive" true
    (rep.Scc.Engine.lookahead_ps > 0);
  Alcotest.(check bool) "windows counted" true (rep.Scc.Engine.windows > 0);
  let ceiling = Scc.Engine.par_ceiling rep in
  Alcotest.(check bool) "ceiling within [1, partitions]" true
    (ceiling >= 1.0 && ceiling <= 8.0)

(* simrun-style profiling must work under the compiled interpreter: the
   closures still push/pop frames and set source lines, so the flat
   profile and line heat tables name the C functions. *)
let test_profile_under_compiled () =
  let src = Exp.Csrc.pi ~nt:4 ~steps:256 in
  let program = Cfront.Parser.program ~file:"pi.c" src in
  let profile = Scc.Profile.create () in
  let _ =
    Cexec.Interp.run_pthread ~profile ~interp:Cexec.Interp.Compiled program
  in
  let rendered = Scc.Profile.render profile in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "profile attributes the worker function" true
    (contains rendered "work");
  Alcotest.(check bool) "line heat is populated" true
    (contains rendered "pi.c:")

let suite =
  [
    Alcotest.test_case "corpus: tree=compiled, seq=partitioned" `Quick
      test_corpus_modes;
    Alcotest.test_case "examples agree across modes" `Quick
      test_examples_modes;
    Alcotest.test_case "translated rcce agrees across modes" `Quick
      test_translated_modes;
    Alcotest.test_case "oracle accepts mode knobs" `Quick test_oracle_modes;
    Alcotest.test_case "partition counters are consistent" `Quick
      test_partition_counters;
    Alcotest.test_case "profile works under compiled mode" `Quick
      test_profile_under_compiled;
  ]
