(* The observability core: counters, histograms, registry sinks, Chrome
   trace events (including file merging), and epoch-rebased spans. *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    i + n <= m && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* --- counters ----------------------------------------------------------- *)

let test_counter_basics () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg ~help:"x" "a_total" in
  Obs.Counter.incr c;
  Obs.Counter.add c 2;
  Alcotest.(check int) "value" 3 (Obs.Counter.value c);
  Alcotest.(check string) "name" "a_total" (Obs.Counter.name c);
  Alcotest.check_raises "monotonic" (Invalid_argument
    "Obs.Counter.add: counters are monotonic")
    (fun () -> Obs.Counter.add c (-1))

let test_counter_idempotent_registration () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg "n_total" in
  Obs.Counter.add a 7;
  let b = Obs.Registry.counter reg "n_total" in
  Alcotest.(check int) "same instrument" 7 (Obs.Counter.value b)

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_buckets () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg ~bounds:[| 10; 100 |] "h" in
  List.iter (Obs.Histogram.observe h) [ 5; 10; 50; 500 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" 565 (Obs.Histogram.sum h);
  (* bounds are inclusive: 10 lands in the first bucket *)
  Alcotest.(check (array int)) "per-bucket" [| 2; 1; 1 |]
    (Obs.Histogram.bucket_counts h)

let test_histogram_bad_bounds () =
  let reg = Obs.Registry.create () in
  let mk bounds () = ignore (Obs.Registry.histogram reg ~bounds "bad") in
  Alcotest.check_raises "empty" (Invalid_argument "Obs.Histogram: no buckets")
    (mk [||]);
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Obs.Histogram: bounds must be strictly increasing")
    (mk [| 5; 5 |])

(* --- registry sinks ------------------------------------------------------- *)

let golden_registry () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg ~help:"x" "a_total" in
  Obs.Counter.add c 3;
  let h = Obs.Registry.histogram reg ~bounds:[| 10; 100 |] "h" in
  List.iter (Obs.Histogram.observe h) [ 5; 50; 500 ];
  reg

let test_prometheus_golden () =
  Alcotest.(check string) "exposition text"
    "# HELP a_total x\n\
     # TYPE a_total counter\n\
     a_total 3\n\
     # TYPE h histogram\n\
     h_bucket{le=\"10\"} 1\n\
     h_bucket{le=\"100\"} 2\n\
     h_bucket{le=\"+Inf\"} 3\n\
     h_sum 555\n\
     h_count 3\n"
    (Obs.Registry.to_prometheus (golden_registry ()))

let test_jsonl_golden () =
  Alcotest.(check string) "json lines"
    ({|{"type":"counter","name":"a_total","value":3}|} ^ "\n"
    ^ {|{"type":"histogram","name":"h","sum":555,"count":3,"bounds":[10,100],"counts":[1,1,1]}|}
    ^ "\n")
    (Obs.Registry.to_jsonl (golden_registry ()))

let test_table_golden () =
  Alcotest.(check string) "table"
    "name     kind       value\n\
     a_total  counter    3\n\
     h        histogram  count=3 sum=555\n"
    (Obs.Registry.to_table (golden_registry ()))

(* --- json escaping -------------------------------------------------------- *)

let test_json_escape () =
  (* quote, backslash and newline get symbolic escapes; other control
     characters (here, tab) the \u form *)
  Alcotest.(check string) "specials" {|a\"b\\c\nd\u0009e|}
    (Obs.json_escape "a\"b\\c\nd\te")

(* --- chrome events -------------------------------------------------------- *)

let test_chrome_complete_golden () =
  let e =
    Obs.Chrome.Complete
      { name = "f"; cat = "sim"; pid = 1; tid = 2; ts_us = 1.5;
        dur_us = 2.25; args = [ ("k", "v") ] }
  in
  Alcotest.(check string) "complete event"
    ({|[{"name":"f","cat":"sim","ph":"X","ts":1.500,"dur":2.250,"pid":1,"tid":2,"args":{"k":"v"}}]|}
    ^ "\n")
    (Obs.Chrome.to_json [ e ])

let test_chrome_counter_and_metadata () =
  let json =
    Obs.Chrome.to_json
      [ Obs.Chrome.Process_name { pid = 7; name = "sim" };
        Obs.Chrome.Thread_name { pid = 7; tid = 1; name = "ue1" };
        Obs.Chrome.Counter
          { name = "m"; pid = 9998; ts_us = 0.5;
            series = [ ("a", 1.0); ("b", 0.25) ] } ]
  in
  Alcotest.(check bool) "process metadata" true
    (contains json
       {|{"name":"process_name","ph":"M","pid":7,"tid":0,"args":{"name":"sim"}}|});
  Alcotest.(check bool) "thread metadata" true
    (contains json
       {|{"name":"thread_name","ph":"M","pid":7,"tid":1,"args":{"name":"ue1"}}|});
  Alcotest.(check bool) "counter series" true
    (contains json {|"args":{"a":1.0000,"b":0.2500}|})

let complete ~name ~ts_us =
  Obs.Chrome.Complete
    { name; cat = "t"; pid = 0; tid = 0; ts_us; dur_us = 1.0; args = [] }

let test_write_merge_appends () =
  let path = Filename.temp_file "obs_merge" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Chrome.write_merge path [ complete ~name:"compile" ~ts_us:0.0 ];
      Obs.Chrome.write_merge path [ complete ~name:"simulate" ~ts_us:5.0 ];
      let ic = open_in path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "one array" true
        (String.length s > 2 && s.[0] = '[' && contains s "]\n"
        && not (contains s "]["));
      Alcotest.(check bool) "first write kept" true (contains s "compile");
      Alcotest.(check bool) "second write merged" true (contains s "simulate"))

let test_write_merge_overwrites_garbage () =
  let path = Filename.temp_file "obs_merge" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "this is not a trace";
      close_out oc;
      Obs.Chrome.write_merge path [ complete ~name:"fresh" ~ts_us:0.0 ];
      let ic = open_in path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "old content gone" true
        (not (contains s "not a trace"));
      Alcotest.(check bool) "new event present" true (contains s "fresh"))

(* --- spans ----------------------------------------------------------------- *)

let test_spans_epoch_rebase () =
  let sp = Obs.Spans.create ~epoch:1_000 Obs.Nanoseconds in
  Obs.Spans.record sp ~name:"p" ~cat:"fact" ~pid:1 ~tid:0 ~start:2_000
    ~dur:500 ();
  Obs.Spans.record sp ~name:"q" ~pid:1 ~tid:0 ~start:3_000 ~dur:(-4) ();
  Alcotest.(check int) "length" 2 (Obs.Spans.length sp);
  match Obs.Spans.spans sp with
  | [ a; b ] ->
      Alcotest.(check int) "rebased start" 1_000 a.Obs.sp_start;
      Alcotest.(check int) "negative dur clamped" 0 b.Obs.sp_dur;
      (match Obs.Spans.to_chrome sp with
      | Obs.Chrome.Complete c :: _ ->
          Alcotest.(check (float 1e-9)) "ns -> us" 1.0 c.ts_us;
          Alcotest.(check (float 1e-9)) "dur ns -> us" 0.5 c.dur_us
      | _ -> Alcotest.fail "expected a complete event")
  | _ -> Alcotest.fail "expected two spans in order"

let test_us_of () =
  Alcotest.(check (float 1e-9)) "ps" 2.5 (Obs.us_of Obs.Picoseconds 2_500_000);
  Alcotest.(check (float 1e-9)) "ns" 1.5 (Obs.us_of Obs.Nanoseconds 1_500)

let test_render_table () =
  Alcotest.(check string) "alignment"
    "ab    c\n\
     a     bcdef\n\
     abcd  e\n"
    (Obs.render_table
       [ [ "ab"; "c" ]; [ "a"; "bcdef" ]; [ "abcd"; "e" ] ])

(* --- labelled counters (one family, many label sets) ------------------ *)

let count_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let n = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr n
  done;
  !n

let test_labelled_counters () =
  let r = Obs.Registry.create () in
  let c0 =
    Obs.Registry.counter r ~help:"events resumed per scheduler partition"
      ~labels:[ ("partition", "0") ] "sim_domain_events_total"
  in
  let c1 =
    Obs.Registry.counter r ~help:"events resumed per scheduler partition"
      ~labels:[ ("partition", "1") ] "sim_domain_events_total"
  in
  Obs.Counter.add c0 5;
  Obs.Counter.add c1 7;
  (* same (name, labels) -> same instrument; distinct labels -> distinct *)
  let c0' =
    Obs.Registry.counter r ~labels:[ ("partition", "0") ]
      "sim_domain_events_total"
  in
  Obs.Counter.incr c0';
  Alcotest.(check int) "same instrument per label set" 6
    (Obs.Counter.value c0);
  Alcotest.(check int) "other label set untouched" 7 (Obs.Counter.value c1);
  let text = Obs.Registry.to_prometheus r in
  Alcotest.(check int) "one # HELP per family" 1
    (count_substring ~needle:"# HELP sim_domain_events_total" text);
  Alcotest.(check int) "one # TYPE per family" 1
    (count_substring ~needle:"# TYPE sim_domain_events_total counter" text);
  Alcotest.(check bool) "partition 0 sample" true
    (contains text {|sim_domain_events_total{partition="0"} 6|});
  Alcotest.(check bool) "partition 1 sample" true
    (contains text {|sim_domain_events_total{partition="1"} 7|})

let test_label_string_sorted () =
  let r = Obs.Registry.create () in
  let c =
    Obs.Registry.counter r ~labels:[ ("b", "2"); ("a", "1") ] "x_total"
  in
  Alcotest.(check string) "labels render sorted by key" {|{a="1",b="2"}|}
    (Obs.Counter.label_string c);
  let plain = Obs.Registry.counter r "y_total" in
  Alcotest.(check string) "no labels, no braces" ""
    (Obs.Counter.label_string plain)

let test_flow_json () =
  let flow phase ts_us =
    Obs.Chrome.Flow
      { name = "critical-path"; cat = "critpath"; id = 9; pid = 1; tid = 2;
        ts_us; phase }
  in
  let json =
    Obs.Chrome.to_json
      [ flow Obs.Chrome.Flow_start 1.0;
        flow Obs.Chrome.Flow_step 2.0;
        flow Obs.Chrome.Flow_end 3.0 ]
  in
  Alcotest.(check int) "one start" 1
    (count_substring ~needle:{|"ph":"s"|} json);
  Alcotest.(check int) "one step" 1
    (count_substring ~needle:{|"ph":"t"|} json);
  Alcotest.(check int) "one end" 1
    (count_substring ~needle:{|"ph":"f"|} json);
  Alcotest.(check int) "terminator binds to enclosing slice" 1
    (count_substring ~needle:{|"bp":"e"|} json);
  Alcotest.(check int) "shared flow id" 3
    (count_substring ~needle:{|"id":9|} json)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter registration idempotent" `Quick
      test_counter_idempotent_registration;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram bad bounds" `Quick test_histogram_bad_bounds;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
    Alcotest.test_case "table golden" `Quick test_table_golden;
    Alcotest.test_case "json escape" `Quick test_json_escape;
    Alcotest.test_case "chrome complete golden" `Quick
      test_chrome_complete_golden;
    Alcotest.test_case "chrome counter + metadata" `Quick
      test_chrome_counter_and_metadata;
    Alcotest.test_case "write_merge appends" `Quick test_write_merge_appends;
    Alcotest.test_case "write_merge overwrites garbage" `Quick
      test_write_merge_overwrites_garbage;
    Alcotest.test_case "spans epoch rebase" `Quick test_spans_epoch_rebase;
    Alcotest.test_case "us_of" `Quick test_us_of;
    Alcotest.test_case "render_table" `Quick test_render_table;
    Alcotest.test_case "labelled counters" `Quick test_labelled_counters;
    Alcotest.test_case "label_string sorted" `Quick test_label_string_sorted;
    Alcotest.test_case "flow event json" `Quick test_flow_json;
  ]
