open Cfront

(* The shared-traffic optimizer: sync-free region analysis, the locality
   plan, pass-ordering metadata, PRE and MPB-cache behaviour on real
   translations, the simulated payoff, and the -O conformance story
   (golden translations, corpus replay, the illegal-hoist killing
   mutation). *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let data_dir name =
  if Sys.file_exists ("../" ^ name) then "../" ^ name else name

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let opt_options ~ncores =
  { Translate.Pass.default_options with Translate.Pass.ncores; optimize = true }

(* ---------------------------------------------------------------- *)
(* sync-free regions *)

let regions_src =
  {|#include <stdio.h>
#include <pthread.h>

int x;
pthread_mutex_t m;

int pure_add(int a, int b) {
    return a + b;
}

void *work(void *arg) {
    x = x + 1;
    pthread_mutex_lock(&m);
    x = x + 2;
    pthread_mutex_unlock(&m);
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[2];
    pthread_mutex_init(&m, NULL);
    for (t = 0; t < 2; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 2; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("x = %d\n", x);
    return 0;
}
|}

let test_sync_primitives () =
  Alcotest.(check bool) "RCCE_barrier synchronizes" true
    (Opt.Sync_regions.is_sync_primitive "RCCE_barrier");
  Alcotest.(check bool) "pthread_mutex_lock synchronizes" true
    (Opt.Sync_regions.is_sync_primitive "pthread_mutex_lock");
  Alcotest.(check bool) "printf does not" false
    (Opt.Sync_regions.is_sync_primitive "printf")

let test_sync_regions_analysis () =
  let program = Parser.program ~file:"regions.c" regions_src in
  let session = Session.create program in
  let regions = Session.sync_regions session in
  Alcotest.(check bool) "work synchronizes" true
    (Opt.Sync_regions.func_has_sync regions "work");
  Alcotest.(check bool) "pure_add is sync-free" false
    (Opt.Sync_regions.func_has_sync regions "pure_add");
  (match Opt.Sync_regions.region_count regions "work" with
  | Some n ->
      Alcotest.(check bool) "lock/unlock split work into regions" true (n >= 2)
  | None -> Alcotest.fail "no regions for work");
  (match Opt.Sync_regions.region_count regions "pure_add" with
  | Some n -> Alcotest.(check int) "pure_add is one region" 1 n
  | None -> Alcotest.fail "no regions for pure_add");
  (* call summaries propagate through expressions and statements *)
  Alcotest.(check bool) "a call to work synchronizes" true
    (Opt.Sync_regions.expr_has_sync regions (Ast.call "work" [ Ast.int 0 ]));
  Alcotest.(check bool) "a call to pure_add does not" false
    (Opt.Sync_regions.expr_has_sync regions
       (Ast.call "pure_add" [ Ast.int 1; Ast.int 2 ]))

(* ---------------------------------------------------------------- *)
(* the locality plan, on the translated generation *)

let test_opt_plan_on_dot () =
  let src = Exp.Csrc.dot_reps ~reps:4 ~nt:4 ~n:64 in
  let program = Parser.program ~file:"dot.c" src in
  let options = { (opt_options ~ncores:4) with Translate.Pass.optimize = false } in
  let session = Session.create ~options program in
  let _ = Translate.Driver.translate_session session in
  let plan = Session.opt_plan session in
  Alcotest.(check bool) "an insertion point was found" true
    (plan.Opt.Opt_plan.insert_at <> None);
  let names = List.map (fun c -> c.Opt.Opt_plan.mc_name) plan.Opt.Opt_plan.mpb in
  Alcotest.(check bool) "the input vectors are MPB candidates" true
    (List.mem "a" names && List.mem "b" names);
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate fits an MPB slice" true
        (c.Opt.Opt_plan.mc_bytes <= 8192))
    plan.Opt.Opt_plan.mpb;
  (* the partial-sum vector is written during the parallel phase: it
     must never be classified read-only *)
  Alcotest.(check bool) "partial sums stay out of the read-only set" false
    (List.mem "partial" plan.Opt.Opt_plan.read_only)

(* ---------------------------------------------------------------- *)
(* pass-ordering metadata *)

let test_opt_pipeline_order () =
  let sched = Translate.Driver.passes_for (opt_options ~ncores:4) in
  let names = List.map (fun p -> p.Translate.Pass.name) sched in
  Alcotest.(check (list string))
    "-O schedule"
    [
      "threads-to-processes"; "mutex-convert"; "remove-pthread";
      "shared-rewrite"; "add-rcce"; "opt-mpb-cache"; "opt-pre"; "optimize";
      "cleanup";
    ]
    names;
  (* the honest schedule satisfies its own must_follow constraints *)
  Translate.Pass.validate_order sched

let test_misordered_schedule_rejected () =
  let sched = Translate.Driver.passes_for (opt_options ~ncores:4) in
  match Translate.Pass.validate_order (List.rev sched) with
  | () -> Alcotest.fail "reversed -O schedule was accepted"
  | exception Translate.Pass.Inconsistent (_, _) -> ()

(* ---------------------------------------------------------------- *)
(* PRE and MPB caching on real translations *)

let translate_example ?(optimize = true) ~ncores name =
  let examples = data_dir "examples/c" in
  let src = read_file (Filename.concat examples (name ^ ".c")) in
  let options =
    { (opt_options ~ncores) with Translate.Pass.optimize }
  in
  fst (Translate.Driver.translate_to_string ~options ~file:(name ^ ".c") src)

let test_pre_hoists_hot_loop () =
  let out = translate_example ~ncores:4 "hot_loop" in
  Alcotest.(check bool) "nsteps load hoisted" true
    (contains ~needle:"__pre_nsteps" out);
  Alcotest.(check bool) "scale load hoisted" true
    (contains ~needle:"__pre_scale" out);
  (* the lock-protected accumulator must never be cached privately *)
  Alcotest.(check bool) "total left alone" false
    (contains ~needle:"__pre_total" out)

let test_mpb_cache_emits_fill_idiom () =
  let src = Exp.Csrc.dot_reps ~reps:4 ~nt:4 ~n:64 in
  let options = opt_options ~ncores:4 in
  let out, _ =
    Translate.Driver.translate_to_string ~options ~file:"dot.c" src
  in
  Alcotest.(check bool) "MPB copies declared" true
    (contains ~needle:"a__mpb" out && contains ~needle:"b__mpb" out);
  Alcotest.(check bool) "striped fill uses the core count" true
    (contains ~needle:"__mpb_nues" out);
  Alcotest.(check bool) "fill is published by a barrier" true
    (contains ~needle:"RCCE_barrier" out)

let test_golden_opt_translations () =
  (* -O output for three examples is pinned: optimizer changes show up
     as reviewable golden diffs *)
  let golden = data_dir "test/golden" in
  let golden = if Sys.file_exists golden then golden else "golden" in
  List.iter
    (fun name ->
      let translated = translate_example ~ncores:4 name in
      let expected =
        read_file (Filename.concat golden (name ^ ".opt.rcce.c"))
      in
      Alcotest.(check string)
        (name ^ " matches its -O golden translation")
        expected translated)
    [ "locked_counter"; "unlocked_counter"; "hot_loop" ]

(* ---------------------------------------------------------------- *)
(* the simulated payoff *)

let test_shared_loads_drop () =
  let examples = data_dir "examples/c" in
  let src = read_file (Filename.concat examples "hot_loop.c") in
  let program = Parser.program ~file:"hot_loop.c" src in
  let run optimize =
    let options = { (opt_options ~ncores:4) with Translate.Pass.optimize } in
    let translated, _ = Translate.Driver.translate_program ~options program in
    Cexec.Interp.run_rcce ~ncores:4 translated
  in
  let naive = run false in
  let opt = run true in
  Alcotest.(check string) "same output" naive.Cexec.Interp.output
    opt.Cexec.Interp.output;
  let loads (r : Cexec.Interp.result) =
    Scc.Stats.total_shared_dram_loads
      (Scc.Engine.stats r.Cexec.Interp.engine)
  in
  Alcotest.(check bool)
    (Printf.sprintf "shared-DRAM loads drop (%d -> %d)" (loads naive)
       (loads opt))
    true
    (loads opt < loads naive / 10);
  Alcotest.(check bool)
    (Printf.sprintf "simulated time improves (%d -> %d ps)"
       naive.Cexec.Interp.elapsed_ps opt.Cexec.Interp.elapsed_ps)
    true
    (opt.Cexec.Interp.elapsed_ps < naive.Cexec.Interp.elapsed_ps)

(* ---------------------------------------------------------------- *)
(* the -O conformance story *)

let test_fuzz_under_optimizer () =
  (* the optimizer must be invisible to the oracle on generated
     programs *)
  let summary =
    Conform.Harness.run ~shrink_budget:0 ~optimize:true ~seed:9090 ~count:10 ()
  in
  Alcotest.(check int) "all programs agree under -O" 0
    (List.length summary.Conform.Harness.s_failures)

let test_corpus_replays_under_optimizer () =
  let dir = data_dir "test/conformance" in
  let dir = if Sys.file_exists dir then dir else "conformance" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".c")
  |> List.sort compare
  |> List.iter (fun f ->
         let path = Filename.concat dir f in
         let contents = read_file path in
         match Conform.Harness.parse_directives contents with
         | Error e -> Alcotest.failf "%s: %s" f e
         | Ok d when d.Conform.Harness.d_expect <> Conform.Harness.Expect_agree
           ->
             (* a recorded divergence is about the program's own races,
                not the optimizer: replay it as recorded only *)
             ()
         | Ok _ -> (
             match
               Conform.Harness.replay ~force_optimize:true ~file:path contents
             with
             | Ok () -> ()
             | Error e -> Alcotest.failf "%s under -O: %s" f e))

let locked_accumulator_src =
  {|#include <stdio.h>
#include <pthread.h>

int total;
pthread_mutex_t m;

void *work(void *arg) {
    int tid = (int) arg;
    pthread_mutex_lock(&m);
    total = total + tid + 1;
    pthread_mutex_unlock(&m);
    pthread_exit(NULL);
}

int main() {
    int t;
    pthread_t threads[4];
    pthread_mutex_init(&m, NULL);
    total = 0;
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("OBS total 0 %d\n", total);
    return 0;
}
|}

let test_illegal_hoist_caught () =
  (* hoisting a lock-protected read out of its critical section loses
     updates; the oracle must see the wrong sum.  This is exactly the
     transformation opt-pre's legality analysis refuses — the sabotage
     proves the refusal is load-bearing. *)
  let program = Parser.program ~file:"locked.c" locked_accumulator_src in
  let cfg = Conform.Oracle.default_config ~ncores:4 in
  (match Conform.Oracle.check cfg program with
  | Conform.Oracle.Agree -> ()
  | Conform.Oracle.Diverge f ->
      Alcotest.failf "honest pipeline diverges: %s"
        (Conform.Oracle.failure_to_string f));
  let sabotage =
    match Conform.Harness.sabotage_of_string "illegal-hoist" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let broken = Conform.Harness.apply_sabotage sabotage cfg in
  match Conform.Oracle.check broken program with
  | Conform.Oracle.Diverge _ -> ()
  | Conform.Oracle.Agree ->
      Alcotest.fail "illegal hoist went unnoticed by the oracle"

let test_illegal_hoist_fuzz_caught () =
  let sabotage =
    match Conform.Harness.sabotage_of_string "illegal-hoist" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let summary =
    Conform.Harness.run ~shrink_budget:0 ~sabotage ~seed:7 ~count:8 ()
  in
  Alcotest.(check bool) "at least one divergence" true
    (summary.Conform.Harness.s_failures <> [])

(* ---------------------------------------------------------------- *)
(* instrumentation *)

let test_timings_list_opt_providers () =
  let examples = data_dir "examples/c" in
  let src = read_file (Filename.concat examples "hot_loop.c") in
  let program = Parser.program ~file:"hot_loop.c" src in
  let options = opt_options ~ncores:4 in
  let session = Session.create ~options program in
  let _ = Translate.Driver.translate_session session in
  let names = List.map (fun t -> t.Session.t_name) (Session.timings session) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " has a timings row") true (List.mem n names))
    [ "sync-regions"; "opt-plan"; "opt-mpb-cache"; "opt-pre" ];
  Alcotest.(check bool) "sync-regions ran" true
    (Session.invocations session "sync-regions" >= 1);
  Alcotest.(check bool) "opt-plan ran" true
    (Session.invocations session "opt-plan" >= 1)

let suite =
  [
    Alcotest.test_case "sync primitives" `Quick test_sync_primitives;
    Alcotest.test_case "sync-free regions" `Quick test_sync_regions_analysis;
    Alcotest.test_case "locality plan on dot" `Quick test_opt_plan_on_dot;
    Alcotest.test_case "-O pipeline order" `Quick test_opt_pipeline_order;
    Alcotest.test_case "misordered schedule rejected" `Quick
      test_misordered_schedule_rejected;
    Alcotest.test_case "PRE hoists the hot-loop loads" `Quick
      test_pre_hoists_hot_loop;
    Alcotest.test_case "MPB cache fill idiom" `Quick
      test_mpb_cache_emits_fill_idiom;
    Alcotest.test_case "golden -O translations" `Quick
      test_golden_opt_translations;
    Alcotest.test_case "shared loads drop under -O" `Slow
      test_shared_loads_drop;
    Alcotest.test_case "fuzz agrees under -O" `Slow test_fuzz_under_optimizer;
    Alcotest.test_case "corpus replays under -O" `Slow
      test_corpus_replays_under_optimizer;
    Alcotest.test_case "killing mutation: illegal-hoist" `Quick
      test_illegal_hoist_caught;
    Alcotest.test_case "killing mutation: illegal-hoist (fuzz)" `Slow
      test_illegal_hoist_fuzz_caught;
    Alcotest.test_case "--timings lists the optimizer providers" `Quick
      test_timings_list_opt_providers;
  ]
