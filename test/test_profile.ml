open Cfront

(* The simulated-time profiler: attribution bookkeeping (flat/inclusive,
   recursion, line heat), the engine-side invariant that every traced
   busy picosecond is attributed, contention and imbalance tables, and
   golden renderings. *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    i + n <= m && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let fn p name =
  match
    List.find_opt
      (fun (r : Scc.Profile.fn_row) -> r.Scc.Profile.fn_name = name)
      (Scc.Profile.functions p)
  with
  | Some r -> r
  | None -> Alcotest.failf "no profile row for %s" name

(* --- attribution bookkeeping (driven by hand) ------------------------------- *)

let manual_profile () =
  let p = Scc.Profile.create () in
  let f = Scc.Profile.intern p "f" in
  let g = Scc.Profile.intern p "g" in
  Scc.Profile.push p ~ctx:0 f;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 1_000;
  Scc.Profile.push p ~ctx:0 g;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Mem_shared 500;
  Scc.Profile.pop p ~ctx:0;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 250;
  Scc.Profile.pop p ~ctx:0;
  p

let test_flat_and_inclusive () =
  let p = manual_profile () in
  let f = fn p "f" and g = fn p "g" in
  Alcotest.(check int) "f flat" 1_250 f.Scc.Profile.fn_flat_total_ps;
  Alcotest.(check int) "f inclusive counts g" 1_750 f.Scc.Profile.fn_incl_ps;
  Alcotest.(check int) "g flat" 500 g.Scc.Profile.fn_flat_total_ps;
  Alcotest.(check int) "g inclusive" 500 g.Scc.Profile.fn_incl_ps;
  Alcotest.(check int) "f compute kind"
    1_250
    f.Scc.Profile.fn_flat_ps.(Scc.Trace.kind_index Scc.Trace.Compute);
  Alcotest.(check int) "ctx total" 1_750 (Scc.Profile.attributed_ps p ~ctx:0);
  Alcotest.(check int) "grand total" 1_750 (Scc.Profile.total_attributed_ps p)

let test_recursion_not_double_counted () =
  let p = Scc.Profile.create () in
  let f = Scc.Profile.intern p "f" in
  Scc.Profile.push p ~ctx:0 f;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 100;
  Scc.Profile.push p ~ctx:0 f;          (* recursive re-entry *)
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 100;
  Scc.Profile.pop p ~ctx:0;
  Scc.Profile.pop p ~ctx:0;
  Alcotest.(check int) "inclusive = one activation" 200
    (fn p "f").Scc.Profile.fn_incl_ps

let test_toplevel_and_unwound_frames () =
  let p = Scc.Profile.create () in
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 50;
  let f = Scc.Profile.intern p "f" in
  Scc.Profile.push p ~ctx:0 f;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 75;
  (* no pop: thread_exit-style unwinding leaves the frame open *)
  Scc.Profile.finalize p;
  Alcotest.(check int) "empty stack charges <toplevel>" 50
    (fn p "<toplevel>").Scc.Profile.fn_flat_total_ps;
  Alcotest.(check int) "finalize completes inclusive time" 75
    (fn p "f").Scc.Profile.fn_incl_ps

let test_line_heat () =
  let p = Scc.Profile.create () in
  let f = Scc.Profile.intern p "f" in
  let l1 = Scc.Profile.intern_line p "w.c:3" in
  let l2 = Scc.Profile.intern_line p "w.c:7" in
  Scc.Profile.push p ~ctx:0 f;
  Scc.Profile.set_line p ~ctx:0 l1;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 10;
  Scc.Profile.set_line p ~ctx:0 l2;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Compute 30;
  Scc.Profile.set_line p ~ctx:0 l1;
  Scc.Profile.charge p ~ctx:0 ~kind:Scc.Trace.Mem_shared 15;
  Scc.Profile.pop p ~ctx:0;
  Alcotest.(check (list (pair string int))) "hottest first"
    [ ("w.c:7", 30); ("w.c:3", 25) ]
    (Scc.Profile.lines p)

(* --- golden renderings -------------------------------------------------------- *)

let test_render_functions_golden () =
  Alcotest.(check string) "flat table"
    "function  calls  compute  private  shared  mpb  barrier  lock  \
     flat-ps  incl-ps\n\
     f         1      1250     0        0       0    0        0     \
     1250     1750\n\
     g         1      0        0        500     0    0        0     \
     500      500\n"
    (Scc.Profile.render_functions (manual_profile ()))

let test_render_locks_golden () =
  let p = Scc.Profile.create () in
  Scc.Profile.name_lock p ~lock:0 "m";
  Scc.Profile.lock_acquired p ~lock:0 ~wait_ps:0 ~holder:(-1);
  Scc.Profile.lock_acquired p ~lock:0 ~wait_ps:2_000 ~holder:3;
  Scc.Profile.lock_acquired p ~lock:1 ~wait_ps:0 ~holder:(-1);
  Alcotest.(check string) "contention table"
    "mutex   acqs  contended  wait-ps  max-wait-ps  holder@max\n\
     m       2     1          2000     2000         3\n\
     lock#1  1     0          0        0            -\n"
    (Scc.Profile.render_locks p)

let test_render_barriers_golden () =
  let p = Scc.Profile.create () in
  Scc.Profile.barrier_episode p ~key:(-1) ~spread_ps:100;
  Scc.Profile.barrier_episode p ~key:(-1) ~spread_ps:40;
  Scc.Profile.barrier_episode p ~key:2 ~spread_ps:7;
  Alcotest.(check string) "imbalance table"
    "barrier    episodes  spread-ps  max-spread-ps\n\
     global     2         140        100\n\
     barrier#2  1         7          7\n"
    (Scc.Profile.render_barriers p)

(* --- the engine-side invariant ------------------------------------------------ *)

let run_profiled w mode =
  let trace = Scc.Trace.create () in
  let profile = Scc.Profile.create () in
  let r = Workloads.Workload.run ~trace ~profile w mode in
  (r, trace, profile)

let busy trace ~ctx =
  List.fold_left (fun acc (_, ps) -> acc + ps)
    0
    (Scc.Trace.busy_by_kind trace ~ctx)

let pi () = List.hd (Exp.Experiments.suite Exp.Experiments.Quick)

let test_attribution_equals_traced_busy () =
  List.iter
    (fun mode ->
      let _, trace, profile = run_profiled (pi ()) mode in
      for ctx = 0 to Scc.Profile.n_ctxs profile - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s ctx %d"
             (Workloads.Workload.mode_to_string mode)
             ctx)
          (busy trace ~ctx)
          (Scc.Profile.attributed_ps profile ~ctx)
      done)
    [ Workloads.Workload.Pthread_baseline 4;
      Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 4);
      Workloads.Workload.Rcce (Workloads.Workload.On_chip, 4) ]

let test_attribution_equals_stats_busy () =
  (* The ISSUE acceptance bar: under RCCE (one context per core, no
     time slicing) the profile's attributed picoseconds are exactly the
     Stats busy time per context. *)
  let r, _, profile =
    run_profiled (pi ()) (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8))
  in
  let stats = r.Workloads.Workload.stats in
  Array.iteri
    (fun ctx (c : Scc.Stats.ctx_stats) ->
      let stats_busy =
        c.Scc.Stats.compute_ps + c.Scc.Stats.mem_stall_ps
        + c.Scc.Stats.barrier_wait_ps + c.Scc.Stats.lock_wait_ps
      in
      Alcotest.(check int)
        (Printf.sprintf "ctx %d" ctx)
        stats_busy
        (Scc.Profile.attributed_ps profile ~ctx))
    stats.Scc.Stats.ctxs

let test_workload_root_frame () =
  let _, _, profile =
    run_profiled (pi ()) (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8))
  in
  let row = fn profile "pi" in
  Alcotest.(check int) "one root frame per UE" 8 row.Scc.Profile.fn_calls;
  Alcotest.(check bool) "time attributed" true
    (row.Scc.Profile.fn_flat_total_ps > 0);
  Alcotest.(check int) "root frame holds everything"
    (Scc.Profile.total_attributed_ps profile)
    row.Scc.Profile.fn_incl_ps

let test_registry_totals_match_flat () =
  let _, trace, profile =
    run_profiled (pi ()) (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 4))
  in
  let traced kind =
    let acc = ref 0 in
    for ctx = 0 to Scc.Profile.n_ctxs profile - 1 do
      acc :=
        !acc
        + (try List.assoc kind (Scc.Trace.busy_by_kind trace ~ctx)
           with Not_found -> 0)
    done;
    !acc
  in
  let prom = Obs.Registry.to_prometheus (Scc.Profile.registry profile) in
  List.iter
    (fun (kind, metric) ->
      Alcotest.(check bool)
        (metric ^ " matches the trace")
        true
        (contains prom (Printf.sprintf "%s %d\n" metric (traced kind))))
    [ (Scc.Trace.Compute, "sim_compute_ps_total");
      (Scc.Trace.Mem_shared, "sim_mem_shared_ps_total");
      (Scc.Trace.Barrier_wait, "sim_barrier_wait_ps_total") ]

let test_barrier_imbalance_recorded () =
  let _, _, profile =
    run_profiled (pi ()) (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 8))
  in
  match Scc.Profile.barriers profile with
  | [] -> Alcotest.fail "no barrier episodes under RCCE"
  | rows ->
      let g =
        List.find
          (fun (r : Scc.Profile.barrier_row) -> r.Scc.Profile.br_name = "global")
          rows
      in
      Alcotest.(check bool) "episodes counted" true
        (g.Scc.Profile.br_episodes >= 1);
      Alcotest.(check bool) "max <= total" true
        (g.Scc.Profile.br_max_spread_ps <= g.Scc.Profile.br_total_spread_ps)

let test_machine_timeline_samples () =
  let trace = Scc.Trace.create () in
  let profile = Scc.Profile.create ~sample_interval_ps:10_000 () in
  let _ =
    Workloads.Workload.run ~trace ~profile (pi ())
      (Workloads.Workload.Rcce (Workloads.Workload.Off_chip, 4))
  in
  match Scc.Profile.counter_events profile with
  | Obs.Chrome.Process_name { pid = 9998; _ } :: rest ->
      Alcotest.(check bool) "samples collected" true (List.length rest > 1);
      let last = ref neg_infinity in
      List.iter
        (function
          | Obs.Chrome.Counter { ts_us; series; _ } ->
              Alcotest.(check bool) "chronological" true (ts_us >= !last);
              last := ts_us;
              List.iter
                (fun (_, v) ->
                  Alcotest.(check bool) "finite sample" true
                    (Float.is_finite v && v >= 0.))
                series
          | _ -> Alcotest.fail "expected counter events after the metadata")
        rest
  | _ -> Alcotest.fail "expected the machine-metrics process metadata first"

(* --- interpreter integration -------------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let examples_dir =
  if Sys.file_exists "../examples/c" then "../examples/c" else "examples/c"

let test_interpreter_attribution () =
  let src = read_file (examples_dir ^ "/locked_counter.c") in
  let program = Parser.program ~file:"locked_counter.c" src in
  let profile = Scc.Profile.create () in
  let trace = Scc.Trace.create () in
  let r = Cexec.Interp.run_pthread ~trace ~profile program in
  Alcotest.(check string) "still computes" "counter = 4000\n"
    r.Cexec.Interp.output;
  (* C functions become profile frames, statements line heat *)
  let work = fn profile "work" and main = fn profile "main" in
  Alcotest.(check bool) "work dominates" true
    (work.Scc.Profile.fn_flat_total_ps > main.Scc.Profile.fn_flat_total_ps);
  Alcotest.(check int) "one frame per thread" 4 work.Scc.Profile.fn_calls;
  Alcotest.(check bool) "line heat collected" true
    (List.exists
       (fun (name, _) -> contains name "locked_counter.c:")
       (Scc.Profile.lines profile));
  (* the mutex appears in the contention table under its source name *)
  (match Scc.Profile.locks profile with
  | [] -> Alcotest.fail "no lock activity recorded"
  | rows ->
      let m =
        List.find_opt
          (fun (r : Scc.Profile.lock_row) -> r.Scc.Profile.lk_name = "m")
          rows
      in
      (match m with
      | None -> Alcotest.fail "mutex m not named in the lock table"
      | Some m ->
          Alcotest.(check int) "4 threads x 1000 acquisitions" 4_000
            m.Scc.Profile.lk_acquisitions));
  (* and the invariant holds for interpreted programs too *)
  for ctx = 0 to Scc.Profile.n_ctxs profile - 1 do
    Alcotest.(check int)
      (Printf.sprintf "interp ctx %d" ctx)
      (busy trace ~ctx)
      (Scc.Profile.attributed_ps profile ~ctx)
  done

let test_profiling_off_by_default () =
  let eng = Scc.Engine.create () in
  ignore (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.compute 10));
  Scc.Engine.run eng;
  Alcotest.(check bool) "no profile" true (Scc.Engine.profile eng = None)

(* --- stats summary golden ------------------------------------------------------ *)

let test_stats_summary_golden () =
  let eng = Scc.Engine.create () in
  let mm = Scc.Engine.memmap eng in
  let shared = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:256 in
  for core = 0 to 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           api.Scc.Engine.compute 1_000;
           api.Scc.Engine.load shared ~bytes:64;
           api.Scc.Engine.store shared ~bytes:32;
           api.Scc.Engine.barrier ()))
  done;
  Scc.Engine.run eng;
  Alcotest.(check string) "summary line"
    "loads=4 stores=2 l1_hits=0 l2_hits=0 private_lines=0 shared_lines=6 \
     (r=4 w=2) mpb_lines=0"
    (Scc.Stats.summary (Scc.Engine.stats eng))

let suite =
  [
    Alcotest.test_case "flat and inclusive" `Quick test_flat_and_inclusive;
    Alcotest.test_case "recursion not double counted" `Quick
      test_recursion_not_double_counted;
    Alcotest.test_case "toplevel + unwound frames" `Quick
      test_toplevel_and_unwound_frames;
    Alcotest.test_case "line heat" `Quick test_line_heat;
    Alcotest.test_case "render functions golden" `Quick
      test_render_functions_golden;
    Alcotest.test_case "render locks golden" `Quick test_render_locks_golden;
    Alcotest.test_case "render barriers golden" `Quick
      test_render_barriers_golden;
    Alcotest.test_case "attribution equals traced busy" `Quick
      test_attribution_equals_traced_busy;
    Alcotest.test_case "attribution equals stats busy (rcce)" `Quick
      test_attribution_equals_stats_busy;
    Alcotest.test_case "workload root frame" `Quick test_workload_root_frame;
    Alcotest.test_case "registry totals match flat" `Quick
      test_registry_totals_match_flat;
    Alcotest.test_case "barrier imbalance recorded" `Quick
      test_barrier_imbalance_recorded;
    Alcotest.test_case "machine timeline samples" `Quick
      test_machine_timeline_samples;
    Alcotest.test_case "interpreter attribution" `Quick
      test_interpreter_attribution;
    Alcotest.test_case "profiling off by default" `Quick
      test_profiling_off_by_default;
    Alcotest.test_case "stats summary golden" `Quick test_stats_summary_golden;
  ]
