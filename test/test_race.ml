open Cfront

(* The static lockset race detector, and its differential guarantee
   against the dynamic Eraser detector: every race the interpreter sees
   is also reported statically (the static analysis over-approximates;
   the reverse containment does not hold, by design). *)

let analyze src =
  Analysis.Pipeline.analyze (Parser.program ~file:"r.c" src)

let static_races src = Analysis.Race.run (analyze src)

(* base names of statically racy variables ("counter", not "i@work") *)
let static_names src =
  List.map
    (fun v ->
      let s = Ir.Var_id.to_string v in
      match String.index_opt s '@' with
      | Some i -> String.sub s 0 i
      | None -> s)
    (Analysis.Race.racy_variables (static_races src))

(* dynamic racy locations, reduced to variable base names: array
   elements report as "name[+16]", heap regions as "shmalloc#0" *)
let dynamic_names src =
  let r =
    Cexec.Interp.run_pthread ~detect_races:true
      (Parser.program ~file:"r.c" src)
  in
  List.filter_map
    (fun (rep : Cexec.Lockset.report) ->
      let l = rep.Cexec.Lockset.location in
      match String.index_opt l '[' with
      | Some i -> Some (String.sub l 0 i)
      | None -> if String.contains l '#' then None else Some l)
    r.Cexec.Interp.races

(* --- the acceptance pair ---------------------------------------------------- *)

let racy_branch =
  {|#include <pthread.h>
    int data;
    int enable;
    void *work(void *tid) {
      if (enable) { data = data + 1; }
      pthread_exit(NULL);
    }
    int main() {
      int t;
      pthread_t threads[4];
      for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *) t);
      }
      for (t = 0; t < 4; t++) { pthread_join(threads[t], NULL); }
      return data;
    }|}

let test_schedule_hidden_race_found_statically () =
  (* the write sits behind a branch the default schedule never takes:
     invisible dynamically, reported statically with a source location *)
  Alcotest.(check (list string)) "dynamic detector sees nothing" []
    (dynamic_names racy_branch);
  let t = static_races racy_branch in
  match t.Analysis.Race.races with
  | [ r ] ->
      Alcotest.(check string) "racy variable" "data"
        (Ir.Var_id.to_string r.Analysis.Race.rvar);
      let loc = r.Analysis.Race.writer.Analysis.Race.loc in
      Alcotest.(check bool) "anchored at the guarded write" true
        (loc.Srcloc.line > 1 && loc.Srcloc.col > 0)
  | rs -> Alcotest.failf "expected exactly 1 race, got %d" (List.length rs)

let test_locked_variant_clean () =
  Alcotest.(check (list string)) "mutex-protected counter is clean" []
    (static_names (Exp.Csrc.mutex_counter ~nt:3 ~iters:5))

(* --- lockset precision ------------------------------------------------------ *)

let test_unsync_counter_races () =
  Alcotest.(check (list string)) "self-race of a multi-instance thread"
    [ "counter" ]
    (static_names
       {|#include <pthread.h>
         int counter;
         void *w(void *a) {
           int i;
           for (i = 0; i < 5; i++) { counter = counter + 1; }
           pthread_exit(NULL);
         }
         int main() {
           pthread_t t[3];
           int i;
           for (i = 0; i < 3; i++) {
             pthread_create(&t[i], NULL, w, (void *)i);
           }
           for (i = 0; i < 3; i++) { pthread_join(t[i], NULL); }
           return counter;
         }|})

let test_inconsistent_locking_races () =
  (* one thread function locks, the other touches the variable bare:
     must-held locksets are disjoint, so the pair races *)
  Alcotest.(check (list string)) "disjoint locksets" [ "counter" ]
    (static_names
       {|#include <pthread.h>
         int counter;
         pthread_mutex_t m;
         void *locked(void *a) {
           pthread_mutex_lock(&m);
           counter = counter + 1;
           pthread_mutex_unlock(&m);
           pthread_exit(NULL);
         }
         void *bare(void *a) {
           counter = counter + 1;
           pthread_exit(NULL);
         }
         int main() {
           pthread_t t1;
           pthread_t t2;
           pthread_mutex_init(&m, NULL);
           pthread_create(&t1, NULL, locked, NULL);
           pthread_create(&t2, NULL, bare, NULL);
           pthread_join(t1, NULL);
           pthread_join(t2, NULL);
           return counter;
         }|})

let test_conditional_lock_is_not_must_held () =
  (* lock taken on only one path: the must-hold join (intersection)
     drops it, so the access still races *)
  Alcotest.(check (list string)) "branch-only lock does not protect"
    [ "counter" ]
    (static_names
       {|#include <pthread.h>
         int counter;
         pthread_mutex_t m;
         void *w(void *a) {
           if ((int) a > 0) { pthread_mutex_lock(&m); }
           counter = counter + 1;
           pthread_mutex_unlock(&m);
           pthread_exit(NULL);
         }
         int main() {
           pthread_t t[2];
           int i;
           for (i = 0; i < 2; i++) {
             pthread_create(&t[i], NULL, w, (void *)i);
           }
           for (i = 0; i < 2; i++) { pthread_join(t[i], NULL); }
           return counter;
         }|})

let test_creator_prejoin_write_races () =
  (* main writes the shared variable between create and join: the
     creator context overlaps the workers *)
  Alcotest.(check (list string)) "creator overlaps workers" [ "counter" ]
    (static_names
       {|#include <pthread.h>
         int counter;
         void *w(void *a) {
           counter = counter + 1;
           pthread_exit(NULL);
         }
         int main() {
           pthread_t t;
           pthread_create(&t, NULL, w, NULL);
           counter = 7;
           pthread_join(t, NULL);
           return counter;
         }|})

let test_postjoin_read_is_ordered () =
  (* the unsynchronized workers race among themselves, but main's
     post-join read must NOT be half of any reported pair *)
  let t =
    static_races
      {|#include <pthread.h>
        int counter;
        void *w(void *a) {
          counter = counter + 1;
          pthread_exit(NULL);
        }
        int main() {
          pthread_t t[2];
          int i;
          for (i = 0; i < 2; i++) {
            pthread_create(&t[i], NULL, w, (void *)i);
          }
          for (i = 0; i < 2; i++) { pthread_join(t[i], NULL); }
          return counter;
        }|}
  in
  List.iter
    (fun (r : Analysis.Race.race) ->
      List.iter
        (fun (a : Analysis.Race.access) ->
          Alcotest.(check string) "no access from the creator after join"
            "w" a.Analysis.Race.in_func)
        [ r.Analysis.Race.writer; r.Analysis.Race.other ])
    t.Analysis.Race.races;
  Alcotest.(check bool) "workers still race" true
    (t.Analysis.Race.races <> [])

(* --- differential: dynamic ⊆ static ---------------------------------------- *)

let differential_sources =
  [
    ("pi", Exp.Csrc.pi ~nt:3 ~steps:60);
    ("primes", Exp.Csrc.primes ~nt:3 ~limit:40);
    ("sum35", Exp.Csrc.sum35 ~nt:3 ~bound:45);
    ("dot", Exp.Csrc.dot ~nt:3 ~n:48);
    ("stream", Exp.Csrc.stream ~nt:2 ~n:32);
    ("lu", Exp.Csrc.lu ~nt:2 ~n:8);
    ("mutex_counter", Exp.Csrc.mutex_counter ~nt:3 ~iters:5);
    ("racy_branch", racy_branch);
  ]

let test_dynamic_races_subset_of_static () =
  List.iter
    (fun (name, src) ->
      let stat = static_names src in
      List.iter
        (fun dyn ->
          Alcotest.(check bool)
            (Printf.sprintf
               "%s: dynamic race on '%s' also reported statically (static: %s)"
               name dyn (String.concat "," stat))
            true (List.mem dyn stat))
        (dynamic_names src))
    differential_sources

(* --- diagnostics ------------------------------------------------------------ *)

let test_check_produces_located_warnings () =
  let diags = Analysis.Race.check (analyze racy_branch) in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "severity" "warning"
        (Diag.severity_to_string d.Diag.severity);
      Alcotest.(check string) "code" "race" d.Diag.code;
      Alcotest.(check bool) "has a location" true (d.Diag.loc <> None);
      Alcotest.(check bool) "names the variable" true
        (String.length d.Diag.message > 0
        && String.sub d.Diag.message 0 17 = "data race on 'dat")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let suite =
  [
    Alcotest.test_case "schedule-hidden race found statically" `Quick
      test_schedule_hidden_race_found_statically;
    Alcotest.test_case "locked variant clean" `Quick test_locked_variant_clean;
    Alcotest.test_case "unsync counter races" `Quick test_unsync_counter_races;
    Alcotest.test_case "inconsistent locking races" `Quick
      test_inconsistent_locking_races;
    Alcotest.test_case "conditional lock not must-held" `Quick
      test_conditional_lock_is_not_must_held;
    Alcotest.test_case "creator pre-join write races" `Quick
      test_creator_prejoin_write_races;
    Alcotest.test_case "post-join read ordered" `Quick
      test_postjoin_read_is_ordered;
    Alcotest.test_case "dynamic subset of static" `Quick
      test_dynamic_races_subset_of_static;
    Alcotest.test_case "check produces located warnings" `Quick
      test_check_produces_located_warnings;
  ]
