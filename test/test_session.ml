open Cfront

(* The compilation session: exactly-once fact computation across
   check + translate, generation invalidation, translation determinism
   over the example corpus, the structural IR checker, and the --timings
   instrumentation goldens. *)

let parse src = Parser.program ~file:"test.c" src

let contains ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    i + n <= m && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let example_session () = Session.create ~file:"example41.c" (parse Exp.Example41.source)

(* --- exactly-once across check + translate -------------------------------- *)

(* The [hsmcc check]-then-translate flow on one session: the race check
   demands the full Stage 1-3 pipeline, and the subsequent translation
   must reuse every one of those facts rather than recompute. *)
let test_check_then_translate_analyzes_once () =
  let session = example_session () in
  let diags_first = Session.race_diags session in
  let _translated, report = Translate.Driver.translate_session session in
  List.iter
    (fun provider ->
      Alcotest.(check int)
        (provider ^ " computed exactly once")
        1
        (Session.invocations session provider))
    [ "scope"; "threads"; "points-to"; "access-counts"; "pipeline";
      "races"; "race-diags"; "partition" ];
  (* and the report's diagnostics are the very list the check produced *)
  Alcotest.(check bool) "same diagnostics" true
    (diags_first == report.Translate.Driver.diagnostics)

(* Symtab is the one fact revalidated on every generation: once for the
   source program plus once per pass-published generation. *)
let test_symtab_revalidated_per_generation () =
  let session = example_session () in
  let _ = Translate.Driver.translate_session session in
  let passes = List.length Translate.Driver.passes in
  Alcotest.(check int) "symtab runs once per generation" (1 + passes)
    (Session.invocations session "symtab")

let test_set_program_invalidates () =
  let session = example_session () in
  let _ = Session.symtab session in
  let _ = Session.symtab session in
  Alcotest.(check int) "memoized within a generation" 1
    (Session.invocations session "symtab");
  Alcotest.(check int) "generation starts at 0" 0
    (Session.generation session);
  Session.set_program session (Session.program session);
  let _ = Session.symtab session in
  Alcotest.(check int) "generation bumped" 1 (Session.generation session);
  Alcotest.(check int) "recomputed after invalidation" 2
    (Session.invocations session "symtab")

let test_facts_computed_counts_only_facts () =
  let session = example_session () in
  let _ = Translate.Driver.translate_session session in
  let fact_invocations =
    List.fold_left
      (fun acc (t : Session.timing) ->
        match t.Session.t_kind with
        | `Fact -> acc + t.Session.t_invocations
        | `Pass -> acc)
      0 (Session.timings session)
  in
  Alcotest.(check int) "facts_computed is the fact total" fact_invocations
    (Session.facts_computed session);
  Alcotest.(check bool) "passes were timed too" true
    (List.exists
       (fun (t : Session.timing) -> t.Session.t_kind = `Pass)
       (Session.timings session))

(* --- determinism over the example corpus ----------------------------------- *)

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let corpus_dir =
  if Sys.file_exists "../examples/c" then "../examples/c"
  else "examples/c"

let corpus () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".c")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat corpus_dir f)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every quoted token immediately followed by ':' — the JSON object keys. *)
let json_keys s =
  let keys = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      if j + 1 < n && s.[j + 1] = ':' then
        keys := String.sub s (!i + 1) (j - !i - 1) :: !keys;
      i := j + 1
    end
    else incr i
  done;
  List.sort compare !keys

let translate_once path =
  let session =
    Session.create ~file:path (Parser.program ~file:path (read_file path))
  in
  let translated, _report = Translate.Driver.translate_session session in
  (Pretty.program translated, session)

let test_translation_deterministic () =
  let files = corpus () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let out1, s1 = translate_once path in
      let out2, s2 = translate_once path in
      Alcotest.(check string)
        (Filename.basename path ^ ": byte-identical output")
        out1 out2;
      Alcotest.(check (list string))
        (Filename.basename path ^ ": identical timings JSON key sets")
        (json_keys (Session.render_timings_json s1))
        (json_keys (Session.render_timings_json s2));
      (* the whole instrumentation shape is deterministic, wall time aside *)
      let shape s =
        List.map
          (fun (t : Session.timing) ->
            (t.Session.t_name, t.Session.t_invocations, t.Session.t_deps))
          (Session.timings s)
      in
      Alcotest.(check bool)
        (Filename.basename path ^ ": identical provider rows")
        true
        (shape s1 = shape s2))
    files

(* --- structural IR checker -------------------------------------------------- *)

let loc = Srcloc.dummy

let inject_into_main ~name stmt =
  {
    Translate.Pass.name;
    forbids_after = [];
    must_follow = [];
    transform =
      (fun _env (program : Ast.program) ->
        let globals =
          List.map
            (fun g ->
              match g with
              | Ast.Gfunc fn when String.equal fn.Ast.f_name "main" ->
                  Ast.Gfunc
                    { fn with Ast.f_body = fn.Ast.f_body @ [ stmt ] }
              | Ast.Gfunc _ | Ast.Gvar _ | Ast.Gproto _ -> g)
            program.Ast.p_globals
        in
        { program with Ast.p_globals = globals });
  }

let run_passes passes src =
  let session = Session.create (parse src) in
  let ctx = Translate.Pass.ctx_of_session session in
  Translate.Pass.run_all passes ctx (Session.program session)

(* A transform that emits a reference to an undeclared identifier is
   rejected by name, matching the old [Pass.Inconsistent] contract. *)
let test_undeclared_identifier_rejected () =
  let bogus =
    inject_into_main ~name:"inject-bogus"
      { Ast.s_desc = Ast.Sexpr (Ast.var "never_declared"); s_loc = loc }
  in
  match run_passes [ bogus ] "int main() { return 0; }" with
  | _ -> Alcotest.fail "expected Pass.Inconsistent"
  | exception Translate.Pass.Inconsistent (pass, diag) ->
      Alcotest.(check string) "blames the offending pass" "inject-bogus" pass;
      Alcotest.(check bool) "names the identifier" true
        (contains ~needle:"never_declared" diag)

(* After remove-pthread, any surviving pthread node is an orphan: the
   accumulated forbids_after makes the checker reject later generations
   that still carry one. *)
let test_orphaned_pthread_rejected () =
  let orphan =
    inject_into_main ~name:"inject-pthread"
      {
        Ast.s_desc = Ast.Sexpr (Ast.call "pthread_exit" [ Ast.int 0 ]);
        s_loc = loc;
      }
  in
  match
    run_passes
      [ Translate.Remove_pthread.pass; orphan ]
      "int main() { return 0; }"
  with
  | _ -> Alcotest.fail "expected Pass.Inconsistent"
  | exception Translate.Pass.Inconsistent (pass, diag) ->
      Alcotest.(check string) "blames the injecting pass" "inject-pthread"
        pass;
      Alcotest.(check bool) "names the orphan" true
        (contains ~needle:"pthread_exit" diag)

let test_wellformed_accepts_translated_output () =
  let translated, _ =
    Translate.Driver.translate_program (parse Exp.Example41.source)
  in
  match Wellformed.check translated with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "translated output ill-formed: %s"
        (Wellformed.error_to_string e)

let test_wellformed_rejects_out_of_scope_local () =
  let program = parse "int main() { { int x; x = 1; } return x; }" in
  match Wellformed.check program with
  | Ok () -> Alcotest.fail "out-of-scope use accepted"
  | Error e ->
      Alcotest.(check bool) "names the variable" true
        (contains ~needle:"'x'" (Wellformed.error_to_string e))

let test_wellformed_scopes_for_decl () =
  let program =
    parse "int main() { for (int i = 0; i < 3; i++) { } return i; }"
  in
  match Wellformed.check program with
  | Ok () -> Alcotest.fail "for-scoped variable leaked"
  | Error e ->
      Alcotest.(check bool) "names the variable" true
        (contains ~needle:"'i'" (Wellformed.error_to_string e))

(* --- timings goldens -------------------------------------------------------- *)

let test_timings_table_golden () =
  let session = example_session () in
  let _ = Translate.Driver.translate_session session in
  let rendered = Session.render_timings session in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: _ ->
      Alcotest.(check (list string))
        "header columns"
        [ "provider"; "kind"; "calls"; "wall-ms"; "depends-on" ]
        (String.split_on_char ' ' header
        |> List.filter (fun s -> s <> ""))
  | [] -> Alcotest.fail "empty rendering");
  List.iter
    (fun provider ->
      Alcotest.(check bool)
        (provider ^ " has a row")
        true
        (List.exists
           (fun l ->
             match String.split_on_char ' ' l with
             | first :: _ -> first = provider
             | [] -> false)
           lines))
    [ "symtab"; "scope"; "threads"; "points-to"; "access-counts";
      "pipeline"; "partition"; "locksets"; "races"; "race-diags";
      "structural-check" ];
  (* providers appear in first-invocation order: scope before threads
     before points-to *)
  let row_index provider =
    let rec go i = function
      | [] -> Alcotest.failf "no row for %s" provider
      | l :: rest ->
          (match String.split_on_char ' ' l with
          | first :: _ when first = provider -> i
          | _ -> go (i + 1) rest)
    in
    go 0 lines
  in
  Alcotest.(check bool) "scope before threads" true
    (row_index "scope" < row_index "threads");
  Alcotest.(check bool) "threads before points-to" true
    (row_index "threads" < row_index "points-to")

let test_timings_json_golden () =
  let session = example_session () in
  let _ = Translate.Driver.translate_session session in
  let json = Session.render_timings_json session in
  let keys = json_keys json in
  let expected = [ "deps"; "invocations"; "kind"; "name"; "wall_ms" ] in
  let uniq = List.sort_uniq compare keys in
  Alcotest.(check (list string)) "every object has exactly these keys"
    expected uniq;
  let count k = List.length (List.filter (String.equal k) keys) in
  Alcotest.(check bool) "keys appear once per object" true
    (List.for_all (fun k -> count k = count "name") expected)

let test_timings_format_parsing () =
  Alcotest.(check bool) "table" true
    (Session.timings_format_of_string "table" = Some `Table);
  Alcotest.(check bool) "text alias" true
    (Session.timings_format_of_string "text" = Some `Table);
  Alcotest.(check bool) "json" true
    (Session.timings_format_of_string "json" = Some `Json);
  Alcotest.(check bool) "garbage" true
    (Session.timings_format_of_string "xml" = None)

let suite =
  [
    Alcotest.test_case "check then translate analyzes once" `Quick
      test_check_then_translate_analyzes_once;
    Alcotest.test_case "symtab revalidated per generation" `Quick
      test_symtab_revalidated_per_generation;
    Alcotest.test_case "set_program invalidates facts" `Quick
      test_set_program_invalidates;
    Alcotest.test_case "facts_computed counts only facts" `Quick
      test_facts_computed_counts_only_facts;
    Alcotest.test_case "translation is deterministic over examples/c" `Quick
      test_translation_deterministic;
    Alcotest.test_case "undeclared identifier rejected mid-pipeline" `Quick
      test_undeclared_identifier_rejected;
    Alcotest.test_case "orphaned pthread node rejected" `Quick
      test_orphaned_pthread_rejected;
    Alcotest.test_case "well-formedness accepts translated output" `Quick
      test_wellformed_accepts_translated_output;
    Alcotest.test_case "well-formedness rejects out-of-scope local" `Quick
      test_wellformed_rejects_out_of_scope_local;
    Alcotest.test_case "well-formedness scopes for-declarations" `Quick
      test_wellformed_scopes_for_decl;
    Alcotest.test_case "timings table golden" `Quick
      test_timings_table_golden;
    Alcotest.test_case "timings json golden" `Quick
      test_timings_json_golden;
    Alcotest.test_case "timings format parsing" `Quick
      test_timings_format_parsing;
  ]
