(* The sweep harness: fixed-order domain pool, section dispatch, and the
   simulator's golden determinism contract. *)

(* --- pool ------------------------------------------------------------------ *)

let test_pool_order () =
  let thunks = List.init 100 (fun i () -> i * i) in
  let got = Exp.Pool.map_fixed ~jobs:4 thunks in
  Alcotest.(check (list int)) "input order" (List.init 100 (fun i -> i * i))
    got

let test_pool_jobs_one_sequential () =
  let got = Exp.Pool.map_fixed ~jobs:1 (List.init 5 (fun i () -> i)) in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2; 3; 4 ] got

exception Boom of int

let test_pool_exception () =
  let thunks =
    List.init 8 (fun i () -> if i = 3 then raise (Boom i) else i)
  in
  match Exp.Pool.map_fixed ~jobs:4 thunks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 3 -> ()
  | exception e -> raise e

(* --- section dispatch ------------------------------------------------------ *)

let test_unknown_section () =
  (match Exp.Experiments.run_section "no-such-section" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error msg ->
      Alcotest.(check bool)
        "names the section" true
        (String.length msg > 0
        && String.sub msg 0 15 = "unknown section"));
  match
    Exp.Experiments.run_section ~scale:Exp.Experiments.Quick "table-6.1"
  with
  | Ok s -> Alcotest.(check bool) "non-empty" true (String.length s > 0)
  | Error e -> Alcotest.fail e

let test_cli_unknown_section_exit_2 () =
  (* the test process runs in _build/default/test *)
  let exe =
    if Sys.file_exists "../bin/experiments.exe" then "../bin/experiments.exe"
    else "_build/default/bin/experiments.exe"
  in
  if Sys.file_exists exe then
    let code = Sys.command (exe ^ " no-such-section 2>/dev/null") in
    Alcotest.(check int) "exit status" 2 code
  else Printf.eprintf "skipping CLI exit test: %s not built\n" exe

(* --- parallel sweep determinism -------------------------------------------- *)

let test_jobs_byte_identical () =
  let a = Exp.Experiments.run_all ~scale:Exp.Experiments.Quick ~jobs:1 () in
  let b = Exp.Experiments.run_all ~scale:Exp.Experiments.Quick ~jobs:4 () in
  Alcotest.(check string) "jobs=4 equals jobs=1" a b

(* --- golden determinism ----------------------------------------------------- *)

(* Exact simulated times for the Figure 6.1 sweep at quick scale.  The
   simulator is deterministic down to the picosecond, so these are exact
   float equalities: any drift means the model's arithmetic changed, not
   just its speed. *)
let test_fig_6_1_goldens () =
  let rows = Exp.Experiments.fig_6_1_data ~scale:Exp.Experiments.Quick () in
  let expect =
    [ ("pi", 4.9834053279999999, 0.15114460399999999);
      ("3-5-sum", 23.369105328, 0.69272460400000002);
      ("primes", 58.467274078000003, 3.4762457279999999);
      ("stream", 16.557276708, 1.4459930240000001);
      ("dot", 2.3223012000000001, 0.29682086400000002);
      ("lu", 3.2332794840000001, 0.68695424000000005) ]
  in
  Alcotest.(check int) "row count" (List.length expect) (List.length rows);
  List.iter2
    (fun (n, b, r) (row : Exp.Experiments.fig_6_1_row) ->
      Alcotest.(check string) (n ^ ": name") n row.Exp.Experiments.name;
      Alcotest.(check (float 0.0))
        (n ^ ": baseline ms")
        b row.Exp.Experiments.baseline_ms;
      Alcotest.(check (float 0.0)) (n ^ ": rcce ms") r
        row.Exp.Experiments.rcce_ms;
      Alcotest.(check bool) (n ^ ": verified") true
        row.Exp.Experiments.verified)
    expect rows

let suite =
  [
    Alcotest.test_case "pool: fixed order" `Quick test_pool_order;
    Alcotest.test_case "pool: jobs=1 sequential" `Quick
      test_pool_jobs_one_sequential;
    Alcotest.test_case "pool: exception propagates" `Quick
      test_pool_exception;
    Alcotest.test_case "dispatch: unknown section" `Quick
      test_unknown_section;
    Alcotest.test_case "dispatch: CLI exits 2" `Quick
      test_cli_unknown_section_exit_2;
    Alcotest.test_case "run_all: jobs byte-identical" `Slow
      test_jobs_byte_identical;
    Alcotest.test_case "fig 6.1: golden cycle counts" `Slow
      test_fig_6_1_goldens;
  ]
