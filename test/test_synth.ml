(* The synthetic workload engine: seeded determinism of both emission
   routes, edge-case specs through the simulator with the causal
   accounting identity, the emitted-C differential against the oracle,
   sweep byte-identity across the domain pool, and the golden sweep
   snapshot. *)

let base_spec =
  { Synth.Spec.seed = 777;
    threads = 4;
    sharing = 2;
    n_shared = 128;
    n_cold = 32;
    n_private = 16;
    read_pct = 90;
    shared_pct = 80;
    insns = 60;
    compute = 4;
    phases = 2;
    dvfs_mhz = 533 }

(* cwd is the test dir under `dune runtest` but the project root under
   `dune exec test/test_main.exe` — accept both. *)
let read_file path =
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- seeded determinism ---------------------------------------------------- *)

let test_trace_deterministic () =
  let a = Synth.Kernel.traces_of_spec base_spec in
  let b = Synth.Kernel.traces_of_spec base_spec in
  Alcotest.(check bool) "same seed, same traces" true (a = b);
  let c =
    Synth.Kernel.traces_of_spec { base_spec with Synth.Spec.seed = 778 }
  in
  Alcotest.(check bool) "different seed, different traces" false (a = c)

let test_emit_deterministic () =
  let a = Synth.Emit.source_of_spec base_spec in
  let b = Synth.Emit.source_of_spec base_spec in
  Alcotest.(check string) "same seed, byte-identical C" a b;
  let c =
    Synth.Emit.source_of_spec { base_spec with Synth.Spec.seed = 778 }
  in
  Alcotest.(check bool) "different seed, different C" true (a <> c)

let test_rows_deterministic () =
  let jsonl sp = Synth.Sweep.jsonl_of_rows (Synth.Sweep.rows_of_spec sp) in
  Alcotest.(check string) "same seed, identical rows" (jsonl base_spec)
    (jsonl base_spec)

let test_grid_shape () =
  let specs = Synth.Spec.grid Synth.Spec.Quick in
  Alcotest.(check bool) "quick grid has >= 200 configs" true
    (List.length specs >= 200);
  List.iteri
    (fun i sp ->
      (match Synth.Spec.validate sp with
      | Ok () -> ()
      | Error m -> Alcotest.failf "config %d invalid: %s" i m);
      Alcotest.(check int) "seed = base + index"
        (Synth.Spec.grid_seed_base + i) sp.Synth.Spec.seed)
    specs

(* --- edge cases through the simulator -------------------------------------- *)

(* Every policy runs with a fresh causal accounting; the PR 9 identity
   [sum over categories == wall * contexts] must hold exactly, and the
   commutative-sum verification must pass. *)
let run_edge name sp =
  (match Synth.Spec.validate sp with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: invalid spec: %s" name m);
  let traces = Synth.Kernel.traces_of_spec sp in
  List.iter
    (fun policy ->
      let cp = Scc.Critpath.create () in
      let m = Synth.Kernel.run_one ~critpath:cp sp traces policy in
      let tag =
        Printf.sprintf "%s/%s" name (Synth.Kernel.policy_to_string policy)
      in
      Alcotest.(check bool) (tag ^ ": verified") true m.Synth.Kernel.m_verified;
      Alcotest.(check bool)
        (tag ^ ": elapsed > 0")
        true
        (m.Synth.Kernel.m_elapsed_ps > 0);
      Alcotest.(check bool)
        (tag ^ ": accounting identity")
        true
        (Scc.Critpath.identity_ok cp))
    Synth.Kernel.policies

let test_edge_no_shared () =
  run_edge "no-hot-array" { base_spec with Synth.Spec.n_shared = 0 }

let test_edge_fully_private () =
  run_edge "fully-private"
    { base_spec with Synth.Spec.n_shared = 0; n_cold = 0; shared_pct = 0 }

let test_edge_sharing_eq_threads () =
  run_edge "sharing=threads"
    { base_spec with Synth.Spec.sharing = base_spec.Synth.Spec.threads }

let test_edge_read_pct_0 () =
  run_edge "read_pct=0" { base_spec with Synth.Spec.read_pct = 0 }

let test_edge_read_pct_100 () =
  run_edge "read_pct=100" { base_spec with Synth.Spec.read_pct = 100 }

let test_edge_one_thread () =
  run_edge "one-thread" { base_spec with Synth.Spec.threads = 1; sharing = 1 }

(* --- the C route against the oracle ----------------------------------------- *)

(* A stratified sample of the quick grid through the full dual-execution
   oracle with the optimizer on; `conform --synth` covers the rest. *)
let test_emitted_c_conforms () =
  let specs = Synth.Spec.grid Synth.Spec.Quick in
  let sample = List.filteri (fun i _ -> i mod 48 = 0) specs in
  List.iter
    (fun sp ->
      let program = Synth.Emit.program_of_spec sp in
      let cfg = Synth.Emit.oracle_config sp in
      match Conform.Oracle.check cfg program with
      | Conform.Oracle.Agree -> ()
      | Conform.Oracle.Diverge f ->
          Alcotest.failf "%s: %s" (Synth.Spec.describe sp)
            (Conform.Oracle.failure_to_string f))
    sample

(* --- sweep byte-identity across the pool ------------------------------------ *)

let test_sweep_jobs_byte_identical () =
  let run jobs =
    let r =
      Exp.Experiments.run_sweep ~scale:Exp.Experiments.Quick ~jobs ~limit:12
        ()
    in
    (r.Exp.Experiments.sweep_jsonl, r.Exp.Experiments.sweep_summary)
  in
  let j1, s1 = run 1 in
  let j4, s4 = run 4 in
  Alcotest.(check string) "jsonl: jobs=4 equals jobs=1" j1 j4;
  Alcotest.(check string) "summary: jobs=4 equals jobs=1" s1 s4

(* --- golden snapshot --------------------------------------------------------- *)

(* The first 12 quick-grid configs, pinned byte-for-byte.  Regenerate
   with:  experiments sweep --quick --limit 12 --jsonl <file>  *)
let test_sweep_golden () =
  let r =
    Exp.Experiments.run_sweep ~scale:Exp.Experiments.Quick ~jobs:1 ~limit:12
      ()
  in
  Alcotest.(check string) "golden JSONL"
    (read_file "golden/sweep_mini.jsonl")
    r.Exp.Experiments.sweep_jsonl;
  Alcotest.(check string) "golden summary"
    (read_file "golden/sweep_mini.summary.txt")
    r.Exp.Experiments.sweep_summary

(* --- JSONL shape -------------------------------------------------------------- *)

let test_jsonl_fields () =
  let rows = Synth.Sweep.rows_of_spec base_spec in
  Alcotest.(check int) "one row per policy"
    (List.length Synth.Kernel.policies)
    (List.length rows);
  List.iter
    (fun row ->
      let line = Synth.Sweep.jsonl_of_row row in
      Alcotest.(check bool) "carries the schema tag" true
        (String.length line > 0
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      List.iter
        (fun key ->
          let needle = Printf.sprintf "\"%s\":" key in
          let found =
            let rec scan i =
              i + String.length needle <= String.length line
              && (String.sub line i (String.length needle) = needle
                 || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) ("field " ^ key) true found)
        [ "schema"; "seed"; "threads"; "sharing"; "policy"; "hot"; "cold";
          "elapsed_ps"; "verified" ])
    rows

(* --- unknown sweep sections exit 2 ------------------------------------------- *)

let test_unknown_sweep_section () =
  (match Exp.Experiments.run_section "sweep-bogus" with
  | Ok _ -> Alcotest.fail "expected Error for sweep-bogus"
  | Error msg ->
      Alcotest.(check bool) "message lists sweep" true
        (let needle = "sweep" in
         let rec scan i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle
              || scan (i + 1))
         in
         scan 0));
  (* same through the installed CLI: exit status 2 *)
  let exe =
    if Sys.file_exists "../bin/experiments.exe" then "../bin/experiments.exe"
    else "_build/default/bin/experiments.exe"
  in
  if Sys.file_exists exe then
    let code = Sys.command (exe ^ " sweep-bogus 2>/dev/null") in
    Alcotest.(check int) "CLI exit status" 2 code
  else Printf.eprintf "skipping CLI exit test: %s not built\n" exe

let suite =
  [
    Alcotest.test_case "traces deterministic per seed" `Quick
      test_trace_deterministic;
    Alcotest.test_case "emitted C byte-identical per seed" `Quick
      test_emit_deterministic;
    Alcotest.test_case "sweep rows deterministic per seed" `Quick
      test_rows_deterministic;
    Alcotest.test_case "quick grid shape and seeds" `Quick test_grid_shape;
    Alcotest.test_case "edge: no hot array" `Quick test_edge_no_shared;
    Alcotest.test_case "edge: fully private" `Quick test_edge_fully_private;
    Alcotest.test_case "edge: sharing = threads" `Quick
      test_edge_sharing_eq_threads;
    Alcotest.test_case "edge: read_pct = 0" `Quick test_edge_read_pct_0;
    Alcotest.test_case "edge: read_pct = 100" `Quick test_edge_read_pct_100;
    Alcotest.test_case "edge: one thread" `Quick test_edge_one_thread;
    Alcotest.test_case "emitted C conforms (oracle, -O)" `Slow
      test_emitted_c_conforms;
    Alcotest.test_case "sweep byte-identical across jobs" `Slow
      test_sweep_jobs_byte_identical;
    Alcotest.test_case "sweep golden snapshot" `Quick test_sweep_golden;
    Alcotest.test_case "JSONL row shape" `Quick test_jsonl_fields;
    Alcotest.test_case "unknown sweep section exits 2" `Quick
      test_unknown_sweep_section;
  ]
