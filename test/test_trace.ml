(* Execution tracing. *)

let run_traced () =
  let trace = Scc.Trace.create () in
  let eng = Scc.Engine.create ~trace () in
  let mm = Scc.Engine.memmap eng in
  let shared = Scc.Memmap.alloc mm Scc.Memmap.Shared_dram ~bytes:256 in
  let mpb = Scc.Memmap.alloc mm (Scc.Memmap.Mpb 0) ~bytes:64 in
  for core = 0 to 1 do
    ignore
      (Scc.Engine.spawn eng ~core (fun api ->
           api.Scc.Engine.compute 1_000;
           api.Scc.Engine.load shared ~bytes:64;
           api.Scc.Engine.load mpb ~bytes:32;
           api.Scc.Engine.barrier ()))
  done;
  Scc.Engine.run eng;
  (eng, trace)

let test_events_recorded () =
  let _, trace = run_traced () in
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun (e : Scc.Trace.event) -> Scc.Trace.kind_to_string e.Scc.Trace.kind)
         (Scc.Trace.events trace))
  in
  List.iter
    (fun k ->
      if not (List.mem k kinds) then
        Alcotest.failf "missing %s events (have: %s)" k
          (String.concat ", " kinds))
    [ "compute"; "shared-dram"; "mpb"; "barrier" ]

let test_intervals_well_formed () =
  let eng, trace = run_traced () in
  let horizon = Scc.Engine.elapsed_ps eng in
  List.iter
    (fun (e : Scc.Trace.event) ->
      if e.Scc.Trace.start_ps < 0 || e.Scc.Trace.end_ps > horizon
         || e.Scc.Trace.start_ps >= e.Scc.Trace.end_ps then
        Alcotest.failf "bad interval [%d, %d] (horizon %d)"
          e.Scc.Trace.start_ps e.Scc.Trace.end_ps horizon)
    (Scc.Trace.events trace)

let test_busy_accounting () =
  let _, trace = run_traced () in
  let busy = Scc.Trace.busy_by_kind trace ~ctx:0 in
  let compute = try List.assoc Scc.Trace.Compute busy with Not_found -> 0 in
  Alcotest.(check int) "1000 cycles of compute traced"
    (Scc.Config.core_cycles_ps Scc.Config.default 1_000)
    compute

let test_chrome_json_shape () =
  let _, trace = run_traced () in
  let json = Scc.Trace.to_chrome_json trace in
  Alcotest.(check bool) "array brackets" true
    (String.length json > 2 && json.[0] = '[');
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec scan i = i + n <= m && (String.sub json i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "duration events" true (contains {|"ph":"X"|});
  Alcotest.(check bool) "kind names present" true (contains "shared-dram")

let test_limit_respected () =
  let trace = Scc.Trace.create ~limit:3 () in
  for i = 0 to 9 do
    Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:(i * 10)
      ~end_ps:((i * 10) + 5) Scc.Trace.Compute
  done;
  Alcotest.(check int) "capped at 3" 3 (Scc.Trace.length trace)

let test_tracing_off_by_default () =
  let eng = Scc.Engine.create () in
  ignore (Scc.Engine.spawn eng ~core:0 (fun api -> api.Scc.Engine.compute 10));
  Scc.Engine.run eng;
  Alcotest.(check bool) "no trace" true (Scc.Engine.trace eng = None)

let test_drops_counted () =
  let trace = Scc.Trace.create ~limit:3 () in
  for i = 0 to 9 do
    Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:(i * 10)
      ~end_ps:((i * 10) + 5) Scc.Trace.Compute
  done;
  (* zero-length intervals are skipped without counting as drops *)
  Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:200 ~end_ps:200
    Scc.Trace.Compute;
  Alcotest.(check int) "kept" 3 (Scc.Trace.length trace);
  Alcotest.(check int) "dropped" 7 (Scc.Trace.dropped trace);
  let fresh = Scc.Trace.create () in
  Alcotest.(check int) "fresh trace drops nothing" 0
    (Scc.Trace.dropped fresh)

let test_max_end_ps () =
  let trace = Scc.Trace.create () in
  Alcotest.(check int) "empty" 0 (Scc.Trace.max_end_ps trace);
  Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:0 ~end_ps:50
    Scc.Trace.Compute;
  Scc.Trace.record trace ~ctx:1 ~core:1 ~start_ps:10 ~end_ps:900
    Scc.Trace.Mem_shared;
  Scc.Trace.record trace ~ctx:0 ~core:0 ~start_ps:60 ~end_ps:80
    Scc.Trace.Barrier_wait;
  Alcotest.(check int) "latest end" 900 (Scc.Trace.max_end_ps trace)

(* --- property: exported Chrome events are well-formed --------------------- *)

let all_kinds =
  [| Scc.Trace.Compute; Scc.Trace.Mem_private; Scc.Trace.Mem_shared;
     Scc.Trace.Mem_mpb; Scc.Trace.Barrier_wait; Scc.Trace.Lock_wait |]

let gen_intervals =
  QCheck.Gen.(
    list_size (int_range 0 200)
      (quad (int_range 0 7) (int_range 0 1_000_000) (int_range 0 2_000)
         (int_range 0 (Array.length all_kinds - 1))))

let print_intervals l =
  String.concat ";"
    (List.map
       (fun (ctx, start, len, k) ->
         Printf.sprintf "(%d,%d,%d,%d)" ctx start len k)
       l)

let trace_of_intervals l =
  let trace = Scc.Trace.create () in
  List.iter
    (fun (ctx, start, len, k) ->
      Scc.Trace.record trace ~ctx ~core:ctx ~start_ps:start
        ~end_ps:(start + len) all_kinds.(k))
    l;
  trace

(* Structural JSON validity without a parser: balanced delimiters and an
   even number of quotes.  Names here contain nothing escapable, so
   every quote is a delimiter. *)
let json_balanced s =
  let depth = ref 0 and quotes = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      match c with
      | '[' | '{' -> incr depth
      | ']' | '}' ->
          decr depth;
          if !depth < 0 then ok := false
      | '"' -> incr quotes
      | _ -> ())
    s;
  !ok && !depth = 0 && !quotes mod 2 = 0

let qcheck_chrome_events_well_formed =
  QCheck.Test.make ~count:200
    ~name:"trace: chrome events are valid and inside the horizon"
    (QCheck.make gen_intervals ~print:print_intervals)
    (fun l ->
      let trace = trace_of_intervals l in
      let horizon_us = float_of_int (Scc.Trace.max_end_ps trace) /. 1e6 in
      List.iter
        (fun (e : Obs.Chrome.event) ->
          match e with
          | Obs.Chrome.Complete { ts_us; dur_us; _ } ->
              if ts_us < 0. || dur_us < 0. then
                QCheck.Test.fail_reportf "negative interval %f+%f" ts_us
                  dur_us;
              if ts_us +. dur_us > horizon_us +. 1e-9 then
                QCheck.Test.fail_reportf "event past max_end_ps: %f+%f > %f"
                  ts_us dur_us horizon_us
          | _ -> ())
        (Scc.Trace.to_chrome_events trace);
      if not (json_balanced (Scc.Trace.to_chrome_json trace)) then
        QCheck.Test.fail_report "unbalanced chrome json";
      true)

let qcheck_busy_equals_event_sum =
  QCheck.Test.make ~count:100
    ~name:"trace: busy_by_kind sums exactly the recorded intervals"
    (QCheck.make gen_intervals ~print:print_intervals)
    (fun l ->
      let trace = trace_of_intervals l in
      let expected = Hashtbl.create 8 in
      List.iter
        (fun (ctx, _, len, k) ->
          if len > 0 then
            let key = (ctx, Scc.Trace.kind_index all_kinds.(k)) in
            Hashtbl.replace expected key
              (len
              + try Hashtbl.find expected key with Not_found -> 0))
        l;
      for ctx = 0 to 7 do
        List.iter
          (fun (kind, ps) ->
            let k = Scc.Trace.kind_index kind in
            let want =
              try Hashtbl.find expected (ctx, k) with Not_found -> 0
            in
            if ps <> want then
              QCheck.Test.fail_reportf "ctx %d kind %d: %d <> %d" ctx k ps
                want)
          (Scc.Trace.busy_by_kind trace ~ctx)
      done;
      true)

let suite =
  [
    Alcotest.test_case "events recorded" `Quick test_events_recorded;
    Alcotest.test_case "intervals well-formed" `Quick
      test_intervals_well_formed;
    Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
    Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
    Alcotest.test_case "limit respected" `Quick test_limit_respected;
    Alcotest.test_case "drops counted" `Quick test_drops_counted;
    Alcotest.test_case "max_end_ps" `Quick test_max_end_ps;
    Alcotest.test_case "off by default" `Quick test_tracing_off_by_default;
    QCheck_alcotest.to_alcotest qcheck_chrome_events_well_formed;
    QCheck_alcotest.to_alcotest qcheck_busy_equals_event_sum;
  ]
