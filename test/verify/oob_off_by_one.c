/* Intentionally unsafe: each thread writes the slot above its own, so
   thread 3 writes out[4] past the end of the 4-element array — and of
   the shmalloc region the translator allocates for it.  `hsmcc verify`
   must refuse to prove this program. */
#include <pthread.h>

int out[4];

void *work(void *arg)
{
    int tid = (int)arg;
    out[tid + 1] = tid;
    pthread_exit(NULL);
}

int main()
{
    int t;
    pthread_t threads[4];
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, work, (void *)t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(threads[t], NULL);
    }
    return out[0];
}
